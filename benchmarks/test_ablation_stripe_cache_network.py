"""Ablations — RAID 5 stripe size, buffer/cache placement, and shared
vs dedicated data network (three of the paper's configurable
factors, DESIGN.md §6)."""

from dataclasses import replace

import pytest

from repro.simengine import Environment
from repro.hardware import DiskSpec, RAIDConfig, RAIDLevel
from repro.clusters import aohyper_config, build_system
from repro.storage.base import IORequest, KiB, MiB
from repro.workloads.iozone import run_iozone
from repro.workloads.btio import BTIOConfig, run_btio
from conftest import show


def test_stripe_size_sweep(benchmark):
    """Small-write RMW penalty shrinks as writes cover whole stripes."""

    def sweep():
        out = {}
        for stripe in (64 * KiB, 256 * KiB, 1 * MiB):
            cfg = aohyper_config("raid5")
            dev = replace(cfg.server_device, stripe_bytes=stripe)
            cfg = replace(cfg, server_device=dev, local_device=dev)
            system = build_system(Environment(), cfg)
            res = run_iozone(system, "n0", "/local/s.tmp", file_bytes=512 * MiB,
                             block_sizes=(1 * MiB,), include_strided=False,
                             include_random=False)
            out[stripe] = res.rate("write", 1 * MiB)
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show("Ablation — RAID5 stripe size (1 MiB sequential writes)",
         "\n".join(f"stripe={k // 1024:5d}K: {v / MiB:8.1f} MB/s" for k, v in rates.items()))
    assert all(v > 0 for v in rates.values())


def test_cache_placement(benchmark):
    """Disabling the client- or server-side cache (a paper factor:
    'state and placement of buffer/cache') hurts NFS streaming."""

    def sweep():
        out = {}
        for variant, kw in (
            ("both-on", {}),
            ("no-client", {"client_cache_enabled": False}),
            ("no-server", {"server_cache_enabled": False}),
        ):
            cfg = replace(aohyper_config("raid5"), **kw)
            system = build_system(Environment(), cfg)
            mount = system.nfs_mounts["n0"]
            env = system.env
            inode = env.run(mount.create("/x"))
            t0 = env.now
            env.run(mount.submit(inode, IORequest("write", 0, 1 * MiB, count=512)))
            env.run(mount.fsync(inode))
            write = 512 * MiB / (env.now - t0)
            t0 = env.now
            env.run(mount.submit(inode, IORequest("read", 0, 1 * MiB, count=512)))
            read = 512 * MiB / (env.now - t0)
            out[variant] = (write, read)
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show("Ablation — cache placement (NFS, 512 MiB stream)",
         "\n".join(f"{k:<10}: write {w / MiB:7.1f}  read {r / MiB:7.1f} MB/s"
                   for k, (w, r) in rates.items()))
    # client cache serves the re-read; without it the wire caps reads
    assert rates["both-on"][1] > rates["no-client"][1]


def test_shared_vs_dedicated_network(benchmark):
    """One network for MPI + file traffic vs the paper's two: BT-IO full
    (communication-heavy) suffers when the fabrics are shared."""

    def sweep():
        out = {}
        for dedicated in (True, False):
            cfg = replace(aohyper_config("raid5"), separate_data_network=dedicated)
            system = build_system(Environment(), cfg)
            res = run_btio(system, BTIOConfig(clazz="A", nprocs=16, subtype="full"))
            out[dedicated] = res.execution_time
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show("Ablation — dedicated vs shared data network (BT-IO class A/full)",
         "\n".join(f"{'dedicated' if k else 'shared':<10}: {v:8.1f} s" for k, v in times.items()))
    assert times[True] <= times[False] * 1.02
