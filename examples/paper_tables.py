#!/usr/bin/env python3
"""Regenerate the paper's headline evaluation in one script.

A non-pytest entry point to the same experiments the benchmark suite
covers: characterizes Aohyper's three configurations, runs NAS BT-IO
class C with 16 processes (full and simple), and prints the paper's
Fig. 12 run metrics plus Tables III/IV used-percentage matrices —
at full paper scale (takes a minute or two).

Run:  python examples/paper_tables.py [--fast]
"""

import sys

from repro import Methodology, aohyper_config, AOHYPER_CONFIGS
from repro.core import format_run_metrics, format_used_matrix
from repro.storage.base import GiB, KiB, MiB
from repro.workloads.apps import BTIOApplication
from repro.workloads.btio import BTIOConfig


def main() -> None:
    fast = "--fast" in sys.argv
    blocks = (
        (64 * KiB, 1 * MiB, 16 * MiB)
        if fast
        else tuple((32 * KiB) << k for k in range(10))
    )
    clazz = "A" if fast else "C"

    methodology = Methodology(
        {name: aohyper_config(name) for name in AOHYPER_CONFIGS},
        block_sizes=blocks,
        ior_nprocs=8,
        ior_file_bytes=(1 if fast else 4) * GiB,
    )
    print("phase 1: characterizing jbod / raid1 / raid5 ...", file=sys.stderr)
    methodology.characterize()

    all_reports = {}
    for subtype in ("full", "simple"):
        app = BTIOApplication(BTIOConfig(clazz=clazz, nprocs=16, subtype=subtype))
        print(f"phase 3: running {app.name} on all three configurations ...", file=sys.stderr)
        reports = methodology.evaluate(app)
        for cfg, rep in reports.items():
            all_reports[f"{cfg}-{subtype}"] = rep

    print(f"\nFig. 12 — NAS BT-IO class {clazz}, 16 processes, cluster Aohyper")
    print(format_run_metrics(all_reports))
    print()
    print(format_used_matrix(all_reports, "write"))
    print()
    print(format_used_matrix(all_reports, "read"))
    print(
        "\npaper's conclusions to check: full >= ~100% at the I/O library level"
        "\n(capacity exploited); simple < 15% on writes, ~a third on reads;"
        "\nfull performs similarly on the three configurations."
    )


if __name__ == "__main__":
    main()
