#!/usr/bin/env python3
"""Evaluating a cluster of your own (the downstream-user workflow).

Defines a hypothetical 16-node cluster — 10 GbE data network, RAID 6
server, bigger RAM — characterizes it, and answers the paper's
motivating question for a custom application: *does this I/O
configuration satisfy the application's requirements, and where is
the bottleneck if not?*

Run:  python examples/custom_cluster.py
"""

from dataclasses import replace

from repro import Environment, Methodology, SystemConfig, build_system
from repro.core import characterize_app, format_perf_table, generate_used_percentage
from repro.hardware import DiskSpec, NodeSpec, RAIDConfig, RAIDLevel, TEN_GIGABIT
from repro.storage.base import GiB, KiB, MiB
from repro.workloads.synthetic import SyntheticPhase, SyntheticSpec, run_synthetic


def my_cluster() -> SystemConfig:
    disk = DiskSpec(capacity_bytes=1000 * 1000 * MiB)  # 1 TB spindles
    return SystemConfig(
        name="mycluster",
        n_compute=16,
        compute_spec=NodeSpec(cores=8, core_gflops=10.0, ram_bytes=24 * GiB),
        server_spec=NodeSpec(cores=8, core_gflops=10.0, ram_bytes=32 * GiB),
        local_device=RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=disk),
        server_device=RAIDConfig(level=RAIDLevel.RAID6, ndisks=8,
                                 stripe_bytes=256 * KiB, disk=disk),
        link=TEN_GIGABIT,
        separate_data_network=True,
    )


def my_application(system):
    """A checkpoint-style app: big collective dumps + strided analysis reads."""
    spec = SyntheticSpec(
        phases=(
            SyntheticPhase("write", 64 * MiB, repetitions=6, collective=True,
                           compute_s=2.0),
            SyntheticPhase("read", 256 * KiB, count=64, stride=1 * MiB,
                           repetitions=6),
        ),
        nprocs=16,
        path="/nfs/checkpoint.dat",
    )
    return run_synthetic(system, spec)


def main() -> None:
    cfg = my_cluster()
    methodology = Methodology(
        {"mycluster": cfg},
        block_sizes=(256 * KiB, 1 * MiB, 16 * MiB),
        char_file_bytes=8 * GiB,  # demo: smaller than 2 x RAM
        ior_nprocs=8,
        ior_file_bytes=4 * GiB,
    )
    print("phase 1: characterizing mycluster ...")
    methodology.characterize()
    print(format_perf_table(methodology.tables["mycluster"]["nfs"]))

    print("\nphase 3: running the application ...")
    system = build_system(Environment(), cfg)
    result = my_application(system)
    profile = characterize_app(result.tracer)
    print(f"execution {result.execution_time:.1f}s, I/O {result.io_time:.1f}s "
          f"({result.io_fraction * 100:.0f}%)")

    used = generate_used_percentage("mycluster", profile, methodology.tables["mycluster"])
    for op in ("write", "read"):
        cells = {lv: used.cell(lv, op) for lv in ("iolib", "nfs", "localfs")}
        pretty = ", ".join(f"{lv}={pct:.0f}%" for lv, pct in cells.items() if pct is not None)
        print(f"{op:>6}: {pretty}")

    from repro.core.evaluation import bottleneck_level

    for op in ("write", "read"):
        lv = bottleneck_level(used, op)
        if lv is None:
            print(f"{op:>6}: not limited by the I/O system at any characterized level")
        else:
            print(f"{op:>6}: limited at the {lv!r} level — candidate for reconfiguration")

    # direct physical evidence: which resource was actually busy?
    from repro.core.utilization import snapshot_utilization

    print()
    print(snapshot_utilization(system).render(top=6))


if __name__ == "__main__":
    main()
