#!/usr/bin/env python3
"""NAS BT-IO: why collective buffering matters (paper §III/IV).

Runs BT-IO class B with both I/O subtypes on cluster Aohyper's RAID 5
configuration, prints the application characterization (the shape of
paper Tables II/V), the per-rank trace timelines (Fig. 8) and the
run metrics — showing the *full* (collective) subtype exploiting the
I/O system while *simple* drowns in tiny synchronous operations.

Run:  python examples/btio_subtypes.py
"""

from repro import Environment, build_aohyper
from repro.core import format_characterization
from repro.storage.base import MiB
from repro.tracing import detect_phases, PhaseDetector, render_timeline
from repro.workloads.btio import BTIOConfig, characterize_btio, run_btio


def main() -> None:
    for subtype in ("full", "simple"):
        cfg = BTIOConfig(clazz="B", nprocs=16, subtype=subtype)
        print("=" * 72)
        print(format_characterization(
            characterize_btio(cfg),
            f"BT-IO class {cfg.clazz}, {cfg.nprocs} procs, subtype={subtype}",
        ))

        system = build_aohyper(Environment(), "raid5")
        res = run_btio(system, cfg)
        print(f"\nexecution time {res.execution_time:8.1f} s")
        print(f"I/O time       {res.io_time:8.1f} s ({res.io_fraction * 100:.1f}% of run)")
        print(f"write rate     {res.write_rate_Bps / MiB:8.1f} MB/s aggregate")
        print(f"read rate      {res.read_rate_Bps / MiB:8.1f} MB/s aggregate")

        print("\ntrace timeline (ranks 0-3):")
        print(render_timeline(res.tracer.events, width=90, ranks=[0, 1, 2, 3]))

        phases = detect_phases(res.tracer.events)
        weights = PhaseDetector.weights(phases)
        print("\ndetected I/O phases:")
        for p in phases:
            print(f"  phase {p.phase_id}: {p.op:5s} block={p.signature[1]:>9}B "
                  f"x{p.occurrences:>3} occurrences, weight {weights[p.phase_id] * 100:5.1f}%")


if __name__ == "__main__":
    main()
