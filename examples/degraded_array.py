#!/usr/bin/env python3
"""Availability analysis: what does a disk failure cost?

The paper lists *data redundancy* among the configurable factors and
notes that configuration selection "depends on the level of
availability that the user is willing to pay for".  This example
quantifies the other side of that trade: the performance of each
Aohyper configuration after losing one disk — JBOD loses the data
outright, RAID 1 serves on without read parallelism, RAID 5 pays
reconstruction on every read.

Run:  python examples/degraded_array.py
"""

from repro import Environment, build_aohyper
from repro.storage.base import IORequest, MiB


def measure(device: str, fail: bool):
    system = build_aohyper(Environment(), device)
    fs = system.local_fs["n0"]
    env = system.env
    if fail:
        fs.array.fail_disk(0)
        if not fs.array.survives_failures:
            return None
    inode = env.run(fs.create("/local/data"))
    env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=2048)))
    env.run(fs.sync())
    t0 = env.now
    env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB, count=2048)))
    read = 2048 * MiB / (env.now - t0)
    t0 = env.now
    env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=2048)))
    env.run(fs.sync())
    write = 2048 * MiB / (env.now - t0)
    return write, read


def main() -> None:
    print(f"{'config':<8}{'state':<10}{'write MB/s':>12}{'read MB/s':>12}")
    for device in ("jbod", "raid1", "raid5"):
        for fail in (False, True):
            state = "degraded" if fail else "healthy"
            rates = measure(device, fail)
            if rates is None:
                print(f"{device:<8}{state:<10}{'DATA LOST':>12}{'DATA LOST':>12}")
                continue
            w, r = rates
            print(f"{device:<8}{state:<10}{w / MiB:>12.1f}{r / MiB:>12.1f}")
    print("\nJBOD offers the most capacity per disk but no survival;")
    print("RAID 5 keeps serving at reduced read speed — the availability")
    print("the user pays for with the parity write penalty.")


if __name__ == "__main__":
    main()
