#!/usr/bin/env python3
"""Quickstart — the whole methodology in ~40 lines.

Builds the paper's cluster Aohyper in its three I/O configurations,
characterizes every level of the I/O path (phase 1), runs NAS BT-IO
class A with collective I/O on each configuration (phase 3), and
prints the used-percentage tables plus a configuration
recommendation.

Run:  python examples/quickstart.py
"""

from repro import Methodology, aohyper_config, AOHYPER_CONFIGS
from repro.core import format_perf_table, format_run_metrics, format_used_matrix
from repro.storage.base import GiB, KiB, MiB
from repro.workloads.apps import BTIOApplication
from repro.workloads.btio import BTIOConfig


def main() -> None:
    # ---- phase 1: characterization -----------------------------------
    # (a reduced block sweep keeps the demo fast; benchmarks/ runs the
    # paper's full 32 KiB..16 MiB sweep)
    methodology = Methodology(
        {name: aohyper_config(name) for name in AOHYPER_CONFIGS},
        block_sizes=(64 * KiB, 1 * MiB, 16 * MiB),
        ior_nprocs=8,
        ior_file_bytes=2 * GiB,
    )
    print("characterizing jbod / raid1 / raid5 at 3 I/O path levels ...")
    methodology.characterize()
    print(format_perf_table(methodology.tables["raid5"]["nfs"]))

    # ---- phase 2: configuration analysis ------------------------------
    for name, factors in methodology.factors().items():
        print(f"\n{name}: device={factors.server_organization}"
              f" x{factors.n_server_devices}, redundancy={factors.data_redundancy}")

    # ---- phase 3: evaluation --------------------------------------------
    app = BTIOApplication(BTIOConfig(clazz="A", nprocs=16, subtype="full"))
    print(f"\nevaluating {app.name} on every configuration ...")
    reports = methodology.evaluate(app)
    print(format_run_metrics(reports))
    print(format_used_matrix(reports, "write"))
    print(format_used_matrix(reports, "read"))

    # ---- configuration selection ------------------------------------------
    profile = reports["raid5"].profile
    print("\nrecommended configurations (by expected rate for this app):")
    for score in methodology.recommend(profile):
        print(f"  {score.name:8s} {score.expected_rate_Bps / MiB:8.1f} MB/s"
              f"  redundancy={score.redundancy}")
    print("\nwith availability required:")
    for score in methodology.recommend(profile, require_redundancy=True):
        print(f"  {score.name:8s} {score.expected_rate_Bps / MiB:8.1f} MB/s")


if __name__ == "__main__":
    main()
