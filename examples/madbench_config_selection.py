#!/usr/bin/env python3
"""MADbench2: selecting the I/O configuration for an application
(paper §IV-F: 'the most suitable configuration is RAID 5').

Characterizes Aohyper's three device configurations, runs MADbench2
(reduced 6-KPIX problem for demo speed) on each, prints the
per-function rates of Fig. 17 and the local-FS used percentages of
Table IX, then lets the methodology pick a configuration — both
unconstrained and with data redundancy required.

Run:  python examples/madbench_config_selection.py
"""

from repro import Methodology, aohyper_config, AOHYPER_CONFIGS
from repro.storage.base import GiB, KiB, MiB
from repro.workloads.apps import MadBenchApplication
from repro.workloads.madbench import MadBenchConfig


def main() -> None:
    methodology = Methodology(
        {name: aohyper_config(name) for name in AOHYPER_CONFIGS},
        block_sizes=(256 * KiB, 1 * MiB, 16 * MiB),
        ior_nprocs=8,
        ior_file_bytes=2 * GiB,
    )
    print("characterizing the three Aohyper configurations ...")
    methodology.characterize()

    app = MadBenchApplication(
        MadBenchConfig(kpix=6, nbin=8, nprocs=16, filetype="shared", busywork_s=0.25)
    )
    print(f"evaluating {app.name} ...\n")
    reports = methodology.evaluate(app)

    print(f"{'config':<8}{'exec(s)':>9}{'io(s)':>9}{'local-fs write%':>17}{'local-fs read%':>16}")
    for name, rep in reports.items():
        print(f"{name:<8}{rep.execution_time_s:>9.1f}{rep.io_time_s:>9.1f}"
              f"{rep.used.cell('localfs', 'write'):>16.1f}%"
              f"{rep.used.cell('localfs', 'read'):>15.1f}%")

    profile = next(iter(reports.values())).profile
    print("\nranking (expected rate at the NFS level for this access pattern):")
    for s in methodology.recommend(profile):
        print(f"  {s.name:8s} {s.expected_rate_Bps / MiB:8.1f} MB/s  redundancy={s.redundancy}")

    print("\nwith availability as a hard requirement:")
    for s in methodology.recommend(profile, require_redundancy=True):
        print(f"  {s.name:8s} {s.expected_rate_Bps / MiB:8.1f} MB/s")

    best = methodology.recommend(profile)[0]
    print(f"\n=> most suitable configuration: {best.name}")


if __name__ == "__main__":
    main()
