"""Evaluation-phase tests: used-percentage generation (Fig. 10) and
bottleneck identification."""

import pytest

from repro.core.characterize import AppMeasure, AppProfile
from repro.core.evaluation import (
    bottleneck_level,
    EvaluationReport,
    generate_used_percentage,
    UsedRow,
)
from repro.core.perftable import PerfRow, PerformanceTable
from repro.storage.base import AccessMode, AccessType


def measure(op="write", block=1024 * 1024, rate=50e6, n_ops=10, mode=AccessMode.SEQUENTIAL):
    total = block * n_ops
    return AppMeasure(op, block, mode, AccessType.GLOBAL, n_ops, total, total / rate)


def table(level, rate, op="write"):
    t = PerformanceTable(level)
    t.add(PerfRow(op, 1024 * 1024, AccessType.GLOBAL, AccessMode.SEQUENTIAL, rate))
    return t


def profile(*measures):
    p = AppProfile(nprocs=4)
    p.measures.extend(measures)
    return p


class TestUsedRow:
    def test_percentage(self):
        r = UsedRow("nfs", "write", 1024, AccessMode.SEQUENTIAL, AccessType.GLOBAL, 50.0, 100.0)
        assert r.used_pct == 50.0

    def test_none_when_uncharacterized(self):
        r = UsedRow("nfs", "write", 1024, AccessMode.SEQUENTIAL, AccessType.GLOBAL, 50.0, None)
        assert r.used_pct is None


class TestGeneration:
    def test_basic_percentages(self):
        prof = profile(measure(rate=50e6))
        tables = {"nfs": table("nfs", 100e6), "iolib": table("iolib", 50e6)}
        used = generate_used_percentage("cfg", prof, tables)
        assert used.cell("nfs", "write") == pytest.approx(50.0)
        assert used.cell("iolib", "write") == pytest.approx(100.0)

    def test_exceeding_100_is_allowed(self):
        """Cache-served application rates surpass the stressed
        characterization — the paper's >100% entries."""
        prof = profile(measure(rate=500e6))
        used = generate_used_percentage("cfg", prof, {"nfs": table("nfs", 100e6)})
        assert used.cell("nfs", "write") > 100.0

    def test_noise_measures_skipped(self):
        big = measure(rate=50e6, n_ops=1000)
        tiny = AppMeasure("write", 64, AccessMode.SEQUENTIAL, AccessType.GLOBAL, 1, 64, 1e-6)
        used = generate_used_percentage("cfg", profile(big, tiny), {"nfs": table("nfs", 100e6)})
        assert len([r for r in used.rows if r.level == "nfs"]) == 1

    def test_per_op_cells_independent(self):
        prof = profile(measure(op="write", rate=50e6), measure(op="read", rate=25e6))
        tables = {
            "nfs": PerformanceTable("nfs"),
        }
        tables["nfs"].add(PerfRow("write", 1024 * 1024, AccessType.GLOBAL, AccessMode.SEQUENTIAL, 100e6))
        tables["nfs"].add(PerfRow("read", 1024 * 1024, AccessType.GLOBAL, AccessMode.SEQUENTIAL, 100e6))
        used = generate_used_percentage("cfg", prof, tables)
        assert used.cell("nfs", "write") == pytest.approx(50.0)
        assert used.cell("nfs", "read") == pytest.approx(25.0)

    def test_missing_level_rows_yield_none_cell(self):
        prof = profile(measure(op="read", rate=10e6))
        used = generate_used_percentage("cfg", prof, {"nfs": table("nfs", 100e6, op="write")})
        assert used.cell("nfs", "read") is None

    def test_levels_listed_in_order(self):
        prof = profile(measure())
        tables = {"iolib": table("iolib", 1e6), "nfs": table("nfs", 1e6)}
        used = generate_used_percentage("cfg", prof, tables)
        assert used.levels() == ["iolib", "nfs"]


class TestBottleneck:
    def test_first_sub_100_level_wins(self):
        prof = profile(measure(rate=80e6))
        tables = {
            "iolib": table("iolib", 70e6),   # >100% -> not the limit
            "nfs": table("nfs", 100e6),      # 80% -> the limit
            "localfs": table("localfs", 400e6),
        }
        used = generate_used_percentage("cfg", prof, tables)
        assert bottleneck_level(used, "write") == "nfs"

    def test_no_bottleneck_when_all_exceed(self):
        prof = profile(measure(rate=200e6))
        used = generate_used_percentage("cfg", prof, {"nfs": table("nfs", 100e6)})
        assert bottleneck_level(used, "write") is None


class TestReport:
    def make_report(self):
        prof = profile(measure(rate=50e6))
        used = generate_used_percentage("cfg", prof, {"nfs": table("nfs", 100e6)})
        return EvaluationReport(
            config_name="cfg",
            execution_time_s=100.0,
            io_time_s=25.0,
            bytes_written=10 * 1024**2,
            bytes_read=5 * 1024**2,
            used=used,
            profile=prof,
        )

    def test_io_fraction(self):
        assert self.make_report().io_fraction == 0.25

    def test_throughput(self):
        rep = self.make_report()
        assert rep.throughput_Bps == pytest.approx(15 * 1024**2 / 25.0)

    def test_bottlenecks_exposed(self):
        rep = self.make_report()
        assert rep.write_bottleneck() == "nfs"
        assert rep.read_bottleneck() is None
