"""Tracer, phase-detection and timeline tests."""

import pytest

from repro.storage.base import AccessMode
from repro.tracing import IOEvent, IOTracer, PhaseDetector, detect_phases, render_timeline


def ev(rank=0, op="write", nbytes=1024, count=1, stride=None, t0=0.0, t1=1.0, path="/f"):
    return IOEvent(rank, op, 0, nbytes, count, stride, t0, t1, path)


class TestIOEvent:
    def test_duration_and_bytes(self):
        e = ev(nbytes=100, count=5, t0=2.0, t1=4.0)
        assert e.duration == 2.0
        assert e.total_bytes == 500
        assert e.bandwidth == 250.0

    def test_mode(self):
        assert ev(count=4, stride=4096, nbytes=100).mode is AccessMode.STRIDED
        assert ev(count=4, stride=None).mode is AccessMode.SEQUENTIAL

    def test_signature_ignores_time(self):
        assert ev(t0=0, t1=1).signature() == ev(t0=5, t1=9).signature()


class TestTracer:
    def test_record_and_query(self):
        t = IOTracer()
        t.record(0, ev(rank=0, op="write", count=3))
        t.record(1, ev(rank=1, op="read"))
        assert t.count_ops("write") == 3
        assert t.count_ops("read") == 1
        assert t.nranks == 2
        assert len(t.rank_events(0)) == 1

    def test_summary(self):
        t = IOTracer()
        t.record(0, ev(op="write", nbytes=100, count=10, t0=0, t1=2))
        t.record(0, ev(op="write", nbytes=200, count=5, t0=2, t1=3))
        s = t.summary("write")
        assert s.n_ops == 15
        assert s.total_bytes == 2000
        assert s.total_time == 3.0
        assert s.block_sizes == {100: 10, 200: 5}
        assert s.dominant_block == 100
        assert s.iops == pytest.approx(5.0)

    def test_io_time_is_per_rank_mean(self):
        t = IOTracer()
        t.record(0, ev(rank=0, t0=0, t1=4))
        t.record(1, ev(rank=1, t0=0, t1=2))
        assert t.io_time() == 3.0
        assert t.io_time(rank=0) == 4.0

    def test_wall_io_span(self):
        t = IOTracer()
        t.record(0, ev(t0=1, t1=2))
        t.record(1, ev(rank=1, t0=5, t1=7))
        assert t.wall_io_span() == 6.0

    def test_transfer_rate(self):
        t = IOTracer()
        t.record(0, ev(op="write", nbytes=1000, t0=0, t1=1))
        t.record(1, ev(rank=1, op="write", nbytes=1000, t0=0, t1=1))
        assert t.transfer_rate("write") == 2000.0

    def test_clear(self):
        t = IOTracer()
        t.record(0, ev())
        t.clear()
        assert t.events == [] and t.nranks == 0

    def test_empty_queries(self):
        t = IOTracer()
        assert t.io_time() == 0.0
        assert t.transfer_rate() == 0.0
        assert t.wall_io_span() == 0.0


class TestPhases:
    def test_repetitive_pattern_yields_one_phase_many_occurrences(self):
        events = []
        t = 0.0
        for rep in range(5):
            events.append(ev(op="write", nbytes=4096, t0=t, t1=t + 1))
            t += 2  # compute gap
            events.append(ev(op="read", nbytes=8192, t0=t, t1=t + 1))
            t += 2
        phases = detect_phases(events)
        assert len(phases) == 2
        by_op = {p.op: p for p in phases}
        # the W/R alternation makes each repetition a new occurrence
        assert by_op["write"].occurrences == 5
        assert by_op["write"].total_bytes == 5 * 4096

    def test_gap_tolerance_splits_occurrences(self):
        events = []
        t = 0.0
        for rep in range(3):
            events.append(ev(op="write", t0=t, t1=t + 1))
            t += 100
        phases = detect_phases(events, gap_tolerance_s=10)
        assert phases[0].occurrences == 3

    def test_phase_ordering_by_first_appearance(self):
        events = [ev(op="read", t0=5, t1=6), ev(op="write", t0=0, t1=1)]
        phases = detect_phases(events)
        assert phases[0].op == "write"
        assert phases[1].op == "read"

    def test_weights_sum_to_one(self):
        events = [ev(op="write", t0=0, t1=3), ev(op="read", t0=3, t1=4)]
        phases = detect_phases(events)
        w = PhaseDetector.weights(phases)
        assert sum(w.values()) == pytest.approx(1.0)
        assert w[0] == pytest.approx(0.75)

    def test_ranks_counted(self):
        events = [ev(rank=r) for r in range(4)]
        phases = detect_phases(events)
        assert phases[0].ranks == 4

    def test_empty(self):
        assert detect_phases([]) == []
        assert PhaseDetector.weights([]) == {}


class TestTimeline:
    def test_render_shows_phases(self):
        events = [
            ev(rank=0, op="write", t0=0, t1=5),
            ev(rank=0, op="read", t0=5, t1=10),
        ]
        art = render_timeline(events, width=10)
        assert "W" in art and "R" in art
        line = [l for l in art.splitlines() if l.startswith("rank 0")][0]
        assert line.index("W") < line.index("R")

    def test_overlap_marked(self):
        events = [
            ev(rank=0, op="write", t0=0, t1=10),
            ev(rank=0, op="read", t0=0, t1=10),
        ]
        art = render_timeline(events, width=10)
        assert "#" in art

    def test_idle_buckets(self):
        events = [ev(rank=0, t0=0, t1=1), ev(rank=0, t0=9, t1=10)]
        art = render_timeline(events, width=20)
        assert "." in art

    def test_empty_trace(self):
        assert "no I/O" in render_timeline([])

    def test_rank_filter(self):
        events = [ev(rank=0), ev(rank=1)]
        art = render_timeline(events, ranks=[1])
        assert "rank 1" in art and "rank 0" not in art
