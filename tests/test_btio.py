"""NAS BT-IO model tests: geometry, characterization vs paper Tables II/V,
and small-scale execution."""

import pytest

from repro.simengine import Environment
from repro.clusters.builder import build_system
from repro.storage.base import MiB
from repro.workloads.btio import (
    BTIOConfig,
    btio_class,
    btio_geometry,
    characterize_btio,
    run_btio,
)
from conftest import small_config


class TestGeometry:
    def test_requires_square_process_count(self):
        with pytest.raises(ValueError):
            btio_geometry(btio_class("C"), 10)

    def test_cells_per_rank_is_sqrt_p(self):
        geom = btio_geometry(btio_class("C"), 16)
        assert len(geom) == 16
        assert all(len(cells) == 4 for cells in geom)

    def test_global_volume_conserved(self):
        clazz = btio_class("C")
        for p in (16, 64):
            geom = btio_geometry(clazz, p)
            total = sum(c.cell_bytes for cells in geom for c in cells)
            assert total == pytest.approx(clazz.step_bytes, rel=1e-3)

    def test_class_c_16p_row_sizes_match_paper(self):
        """Paper Table II: simple-subtype blocks are 1600 and 1640 bytes."""
        geom = btio_geometry(btio_class("C"), 16)
        sizes = {c.row_bytes for cells in geom for c in cells}
        assert sizes == {1600, 1640}

    def test_class_c_64p_row_sizes_match_paper(self):
        """Paper Table V: 800 and 840 bytes."""
        geom = btio_geometry(btio_class("C"), 64)
        sizes = {c.row_bytes for cells in geom for c in cells}
        assert sizes == {800, 840}

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            btio_class("Z")


class TestCharacterization:
    def test_full_16p_matches_table2(self):
        char = characterize_btio(BTIOConfig(clazz="C", nprocs=16, subtype="full"))
        assert char["numio_write"] == 640
        assert char["numio_read"] == 640
        assert char["num_files"] == 1
        for b in char["block_bytes_write"]:
            assert b == pytest.approx(10 * MiB, rel=0.05)  # "10 MB"

    def test_simple_16p_matches_table2(self):
        char = characterize_btio(BTIOConfig(clazz="C", nprocs=16, subtype="simple"))
        # paper: 2,073,600 + 2,125,440 = 4,199,040 operations
        assert char["numio_write"] == 4_199_040
        assert char["block_bytes_write"] == [1600, 1640]
        for paper, block in ((2_073_600, 1600), (2_125_440, 1640)):
            assert char["ops_by_block"][block] == pytest.approx(paper, rel=0.02)

    def test_full_64p_matches_table5(self):
        char = characterize_btio(BTIOConfig(clazz="C", nprocs=64, subtype="full"))
        assert char["numio_write"] == 2560
        for b in char["block_bytes_write"]:
            assert b == pytest.approx(2.54 * MiB, rel=0.05)

    def test_simple_64p_matches_table5(self):
        char = characterize_btio(BTIOConfig(clazz="C", nprocs=64, subtype="simple"))
        assert char["block_bytes_write"] == [800, 840]

    def test_verify_read_flag(self):
        char = characterize_btio(BTIOConfig(clazz="C", nprocs=16, subtype="full", verify_read=False))
        assert char["numio_read"] == 0

    def test_subtype_validation(self):
        with pytest.raises(ValueError):
            BTIOConfig(subtype="collective")


class TestExecution:
    """Class W (24^3) keeps run times tiny while exercising both paths."""

    def run_one(self, subtype, nprocs=4):
        system = build_system(Environment(), small_config(n_compute=2))
        cfg = BTIOConfig(clazz="W", nprocs=nprocs, subtype=subtype, path="/nfs/bt.out")
        return run_btio(system, cfg)

    def test_full_runs_and_reports(self):
        res = self.run_one("full")
        clazz = btio_class("W")
        assert res.execution_time > 0
        assert res.n_writes == clazz.io_steps * 4
        assert res.n_reads == res.n_writes
        assert res.bytes_written == pytest.approx(clazz.file_bytes, rel=1e-3)
        assert 0 < res.io_fraction < 1

    def test_simple_runs_with_many_small_ops(self):
        res = self.run_one("simple")
        assert res.n_writes > 100 * res.config.nprocs

    def test_simple_worse_io_rate_than_full(self):
        full = self.run_one("full")
        simple = self.run_one("simple")
        assert simple.write_rate_Bps < full.write_rate_Bps

    def test_tracer_attached(self):
        res = self.run_one("full")
        assert res.tracer is not None
        assert res.tracer.count_ops("write") == res.n_writes
