"""IOzone and IOR workload tests (small scale)."""

import pytest

from repro.simengine import Environment
from repro.clusters.builder import build_system
from repro.storage.base import AccessMode, KiB, MiB
from repro.workloads import run_iozone, run_ior
from conftest import small_config


BLOCKS = (64 * KiB, 1 * MiB)


def test_iozone_produces_all_sequential_tests(system):
    res = run_iozone(system, "n0", "/local/z.tmp", file_bytes=32 * MiB,
                     block_sizes=BLOCKS, include_strided=False, include_random=False)
    tests = {r.test for r in res.rows}
    assert tests == {"write", "rewrite", "read", "reread"}
    assert len(res.rows) == 4 * len(BLOCKS)


def test_iozone_rates_positive_and_bounded(system):
    res = run_iozone(system, "n0", "/local/z.tmp", file_bytes=32 * MiB, block_sizes=BLOCKS,
                     include_strided=False, include_random=False)
    for r in res.rows:
        assert 0 < r.rate_Bps < 10e9
        assert r.elapsed_s > 0


def test_iozone_default_file_is_twice_ram(system):
    res = run_iozone(system, "n0", "/local/z.tmp", block_sizes=(1 * MiB,),
                     include_strided=False, include_random=False)
    assert res.file_bytes == 2 * system.node("n0").spec.ram_bytes


def test_iozone_strided_and_random_modes(system):
    res = run_iozone(system, "n0", "/local/z.tmp", file_bytes=32 * MiB,
                     block_sizes=(64 * KiB,), include_strided=True, include_random=True)
    modes = {r.mode for r in res.rows}
    assert modes == {AccessMode.SEQUENTIAL, AccessMode.STRIDED, AccessMode.RANDOM}


def test_iozone_sequential_writes_faster_than_random(system):
    res = run_iozone(system, "n0", "/local/z.tmp", file_bytes=64 * MiB,
                     block_sizes=(64 * KiB,), include_random=True, include_strided=False)
    seq = res.rate("write", 64 * KiB)
    rnd = res.rate("random_write", 64 * KiB)
    assert seq > rnd


def test_iozone_rate_lookup_raises_for_missing(system):
    res = run_iozone(system, "n0", "/local/z.tmp", file_bytes=16 * MiB, block_sizes=(64 * KiB,),
                     include_strided=False, include_random=False)
    with pytest.raises(KeyError):
        res.rate("write", 123)


def test_iozone_nfs_vs_local(system):
    local = run_iozone(system, "n0", "/local/z.tmp", file_bytes=32 * MiB,
                       block_sizes=(1 * MiB,), include_strided=False, include_random=False)
    nfs = run_iozone(system, "n0", "/nfs/z.tmp", file_bytes=32 * MiB,
                     block_sizes=(1 * MiB,), include_strided=False, include_random=False)
    # both work; NFS bounded by wire, local by disk
    assert nfs.rate("write", 1 * MiB) > 0
    assert local.rate("write", 1 * MiB) > 0


def test_ior_rows_per_block_and_op():
    system = build_system(Environment(), small_config(n_compute=2))
    res = run_ior(system, 4, block_sizes=(1 * MiB, 4 * MiB), file_bytes=32 * MiB)
    assert len(res.rows) == 4  # 2 blocks x {read, write}
    assert {r.op for r in res.rows} == {"read", "write"}
    for r in res.rows:
        assert r.aggregate_rate_Bps > 0
        assert r.nprocs == 4


def test_ior_rate_lookup():
    system = build_system(Environment(), small_config(n_compute=2))
    res = run_ior(system, 2, block_sizes=(1 * MiB,), file_bytes=8 * MiB)
    assert res.rate("write", 1 * MiB) > 0
    with pytest.raises(KeyError):
        res.rate("write", 999)


def test_ior_collective_vs_independent():
    for collective in (True, False):
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_ior(system, 2, block_sizes=(1 * MiB,), file_bytes=8 * MiB, collective=collective)
        assert res.rate("write", 1 * MiB) > 0


def test_ior_aggregate_exceeds_zero_and_below_memcpy():
    system = build_system(Environment(), small_config(n_compute=2))
    res = run_ior(system, 2, block_sizes=(4 * MiB,), file_bytes=16 * MiB)
    assert res.rate("read", 4 * MiB) < 10e9
