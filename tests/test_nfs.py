"""NFS client/server tests: RPC namespace, caching, direct mode, contention."""

import pytest

from repro.simengine import Environment
from repro.hardware import Node, NodeSpec, Network, GIGABIT, RAIDArray, RAIDConfig, RAIDLevel
from repro.storage.base import IORequest, KiB, MiB
from repro.storage.cache import CacheSpec
from repro.storage.localfs import LocalFS
from repro.storage.nfs import NFSMount, NFSServer, NFSSpec

from conftest import SMALL_DISK, SMALL_NODE


def build(nclients=2, client_cache=16 * MiB, server_ram=64 * MiB, spec=None):
    env = Environment()
    names = [f"c{i}" for i in range(nclients)] + ["srv"]
    net = Network(env, names, GIGABIT)
    srv_node = Node(env, "srv", NodeSpec(ram_bytes=server_ram))
    arr = RAIDArray(env, RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=SMALL_DISK))
    export = LocalFS(env, srv_node, arr)
    server = NFSServer(env, srv_node, export, net, spec)
    clients = [
        NFSMount(env, Node(env, f"c{i}", SMALL_NODE), server,
                 cache_spec=CacheSpec(capacity_bytes=client_cache))
        for i in range(nclients)
    ]
    return env, server, clients


class TestNamespace:
    def test_create_open_stat(self):
        env, srv, (c0, c1) = build()
        inode = env.run(c0.create("/f"))
        assert c1.exists("/f")
        assert c1.stat("/f") is inode
        inode2 = env.run(c1.open("/f"))
        assert inode2 is inode

    def test_open_create_flag(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.open("/new", create=True))
        assert c0.exists("/new")

    def test_unlink_visible_to_all_clients(self):
        env, srv, (c0, c1) = build()
        env.run(c0.create("/f"))
        env.run(c1.unlink("/f"))
        assert not c0.exists("/f")

    def test_metadata_rpc_costs_latency(self):
        env, srv, (c0, _) = build()
        env.run(c0.create("/f"))
        assert env.now >= 2 * GIGABIT.latency_s


class TestCachedPath:
    def test_dense_write_absorbed_then_committed(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit(inode, IORequest("write", 0, 1 * MiB, count=4)))
        assert c0.cache.dirty_bytes > 0
        env.run(c0.fsync(inode))
        assert c0.cache.dirty_bytes == 0
        assert srv.export.stats.bytes_written >= 4 * MiB

    def test_close_flushes_and_commits(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit(inode, IORequest("write", 0, 1 * MiB, count=2)))
        env.run(c0.close(inode))
        assert c0.cache.dirty_bytes == 0
        assert c0.stats.commits >= 1

    def test_client_cache_serves_reread_without_wire(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit(inode, IORequest("write", 0, 1 * MiB, count=4)))
        env.run(c0.fsync(inode))
        rpcs0 = c0.stats.rpcs
        env.run(c0.submit(inode, IORequest("read", 0, 1 * MiB, count=4)))
        assert c0.stats.rpcs == rpcs0  # all hits

    def test_other_client_must_fetch(self):
        env, srv, (c0, c1) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit(inode, IORequest("write", 0, 1 * MiB, count=4)))
        env.run(c0.fsync(inode))
        rpcs0 = c1.stats.rpcs
        env.run(c1.submit(inode, IORequest("read", 0, 1 * MiB, count=4)))
        assert c1.stats.rpcs > rpcs0

    def test_large_transfer_near_wire_speed(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.create("/f"))
        t0 = env.now
        env.run(c0.submit(inode, IORequest("write", 0, 1 * MiB, count=128)))
        env.run(c0.fsync(inode))
        rate = 128 * MiB / (env.now - t0)
        assert rate > 0.7 * GIGABIT.bandwidth_Bps
        assert rate <= 1.2 * GIGABIT.bandwidth_Bps


class TestDirectPath:
    def test_dense_direct_write_reaches_server(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit_direct(inode, IORequest("write", 0, 4 * MiB)))
        assert inode.size == 4 * MiB
        assert c0.cache.dirty_bytes == 0  # bypasses client cache

    def test_sparse_direct_pays_rtt_per_op(self):
        env, srv, (c0, _) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit_direct(inode, IORequest("write", 0, 1 * MiB, count=8)))
        t0 = env.now
        count = 500
        env.run(c0.submit_direct(inode, IORequest("write", 0, 1600, count=count, stride=6480)))
        dt = env.now - t0
        assert dt >= count * 2 * GIGABIT.latency_s  # serial round trips

    def test_sparse_direct_writes_serialize_across_clients(self):
        spec = NFSSpec(server_small_op_s=1e-3)
        env, srv, (c0, c1) = build(spec=spec)
        inode = env.run(c0.create("/f"))
        env.run(c0.submit_direct(inode, IORequest("write", 0, 1 * MiB, count=4)))
        t0 = env.now
        e0 = c0.submit_direct(inode, IORequest("write", 0, 2 * KiB, count=100, stride=64 * KiB))
        e1 = c1.submit_direct(inode, IORequest("write", 4 * KiB, 2 * KiB, count=100, stride=64 * KiB))
        env.run(env.all_of([e0, e1]))
        assert env.now - t0 >= 200 * 1e-3  # inode mutex serialises both streams

    def test_direct_dense_read(self):
        env, srv, (c0, c1) = build()
        inode = env.run(c0.create("/f"))
        env.run(c0.submit_direct(inode, IORequest("write", 0, 4 * MiB)))
        got = env.run(c1.submit_direct(inode, IORequest("read", 0, 4 * MiB)))
        assert got == 4 * MiB


class TestContention:
    def test_two_writers_share_server(self):
        env, srv, (c0, c1) = build()
        i0 = env.run(c0.create("/a"))
        i1 = env.run(c1.create("/b"))
        t0 = env.now
        e0 = c0.submit(i0, IORequest("write", 0, 1 * MiB, count=64))
        e1 = c1.submit(i1, IORequest("write", 0, 1 * MiB, count=64))
        env.run(env.all_of([e0, e1]))
        env.run(env.all_of([c0.fsync(i0), c1.fsync(i1)]))
        agg = 128 * MiB / (env.now - t0)
        assert agg <= 1.25 * GIGABIT.bandwidth_Bps  # one server downlink

    def test_server_thread_pool_bounds_concurrency(self):
        spec = NFSSpec(server_threads=1)
        env, srv, clients = build(nclients=2, spec=spec)
        assert srv.threads.capacity == 1
