"""Predictive I/O model tests (the paper's future-work feature)."""

import pytest

from repro.core.characterize import AppMeasure, AppProfile
from repro.core.perftable import PerfRow, PerformanceTable
from repro.core.prediction import (
    meets_requirement,
    predict_io_time,
    rank_predicted,
)
from repro.storage.base import AccessMode, AccessType, MiB


def measure(op="write", block=1 * MiB, total=100 * MiB, mode=AccessMode.SEQUENTIAL):
    return AppMeasure(op, block, mode, AccessType.GLOBAL, total // block, total, 1.0)


def profile(*measures):
    p = AppProfile(nprocs=4)
    p.measures.extend(measures)
    return p


def tables(iolib=100e6, nfs=80e6, localfs=300e6, op="write"):
    out = {}
    for level, rate in (("iolib", iolib), ("nfs", nfs), ("localfs", localfs)):
        t = PerformanceTable(level)
        t.add(PerfRow(op, 1 * MiB, AccessType.GLOBAL, AccessMode.SEQUENTIAL, rate))
        out[level] = t
    return out


class TestPredict:
    def test_limiting_level_is_slowest(self):
        pred = predict_io_time("cfg", profile(measure()), tables())
        assert pred.per_measure[0].limiting_level == "nfs"
        assert pred.per_measure[0].limiting_rate_Bps == 80e6

    def test_predicted_time_bytes_over_rate(self):
        pred = predict_io_time("cfg", profile(measure(total=160 * MiB)), tables(nfs=80 * MiB))
        assert pred.io_time_s == pytest.approx(2.0)

    def test_sums_over_measures(self):
        prof = profile(
            measure(op="write", total=100 * MiB),
            measure(op="read", total=50 * MiB),
        )
        tbls = tables()
        for t in tables(op="read").values():
            tbls[t.level].rows.extend(t.rows)
        pred = predict_io_time("cfg", prof, tbls)
        assert pred.io_time_s == pytest.approx(pred.time_for("write") + pred.time_for("read"))
        assert pred.time_for("read") > 0

    def test_missing_level_skipped(self):
        tbls = tables()
        del tbls["localfs"]
        pred = predict_io_time("cfg", profile(measure()), tbls)
        assert pred.per_measure[0].limiting_level == "nfs"

    def test_no_tables_zero_prediction(self):
        pred = predict_io_time("cfg", profile(measure()), {})
        assert pred.io_time_s == 0.0
        assert pred.per_measure[0].limiting_level is None

    def test_limiting_levels_histogram(self):
        pred = predict_io_time("cfg", profile(measure(), measure(op="write", block=1 * MiB)), tables())
        assert pred.limiting_levels() == {"nfs": 2}


class TestRequirements:
    def test_time_budget(self):
        pred = predict_io_time("cfg", profile(measure(total=160 * MiB)), tables(nfs=80 * MiB))
        assert meets_requirement(pred, max_io_time_s=3.0)
        assert not meets_requirement(pred, max_io_time_s=1.0)

    def test_bandwidth_floor(self):
        pred = predict_io_time("cfg", profile(measure(total=160 * MiB)), tables(nfs=80 * MiB))
        assert meets_requirement(pred, min_bandwidth_Bps=50 * MiB)
        assert not meets_requirement(pred, min_bandwidth_Bps=200 * MiB)

    def test_no_constraints_always_met(self):
        pred = predict_io_time("cfg", profile(measure()), tables())
        assert meets_requirement(pred)


class TestRanking:
    def test_fastest_config_first(self):
        prof = profile(measure())
        by_config = {
            "slow": tables(nfs=10e6),
            "fast": tables(nfs=100e6),
        }
        ranked = rank_predicted(prof, by_config)
        assert [p.config_name for p in ranked] == ["fast", "slow"]
        assert ranked[0].io_time_s < ranked[1].io_time_s


class TestAgainstSimulation:
    def test_prediction_tracks_simulated_io_time(self):
        """The static prediction should land within ~3x of the simulated
        I/O time for a collective streaming workload (the model ignores
        overlap and metadata, so it is approximate by design)."""
        from repro.core import Methodology, characterize_app
        from repro.storage.base import KiB
        from repro.workloads.apps import BTIOApplication
        from repro.workloads.btio import BTIOConfig
        from conftest import small_config

        m = Methodology(
            {"jbod": small_config("jbod")},
            block_sizes=(64 * KiB, 1 * MiB),
            char_file_bytes=16 * MiB,
            ior_nprocs=2,
            ior_file_bytes=8 * MiB,
        )
        m.characterize()
        app = BTIOApplication(BTIOConfig(clazz="W", nprocs=4, subtype="full", path="/nfs/bt"))
        reports = m.evaluate(app)
        actual = reports["jbod"].io_time_s
        pred = predict_io_time("jbod", reports["jbod"].profile, m.tables["jbod"])
        assert pred.io_time_s > 0
        assert pred.io_time_s / actual < 3.0
        assert actual / pred.io_time_s < 3.0
