"""The crash-safe sweep orchestrator: plan, pool, resume, report.

The acceptance bar (ISSUE): a sweep SIGKILL'd and resumed converges on
byte-identical result records to an uninterrupted run; a hung shard is
timed out, retried with seeded backoff, and quarantined without
stalling the sweep; worker loss shrinks the pool instead of aborting.
Real-simulation tests use the quick characterization sweep so each
task runs in tens of milliseconds.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.storage.base import KiB, MiB
from repro.sweep import (
    MODES,
    PlanError,
    PoolExhaustedError,
    SweepRunner,
    build_plan,
    char_params,
    collect_faults,
    collect_workloads,
    run_sweep,
    run_sweep_task,
)
from repro.sweep.runner import backoff_s
from repro.sweep.store import ResultStore, StoreError

QUICK_CHAR = char_params(
    (256 * KiB, 1 * MiB), char_file_bytes=8 * MiB, ior_file_bytes=64 * MiB
)

RUNNER_KW = dict(timeout_s=30.0, backoff_base_s=0.01, heartbeat_timeout_s=30.0)


def quick_plan(configs=("jbod",), workloads=("madbench:2:4",), faults=("none",),
               modes=("exact",), fuzz_seeds=()):
    return build_plan(
        list(configs),
        collect_workloads(named=list(workloads), fuzz_seeds=list(fuzz_seeds)),
        collect_faults(list(faults)),
        list(modes),
        QUICK_CHAR,
    )


# ----------------------------------------------------------------------
# plan enumeration
# ----------------------------------------------------------------------
class TestPlan:
    def test_cross_product_size_and_identity(self):
        plan = quick_plan(
            configs=("jbod", "raid1"),
            workloads=("madbench:2:4", "btio:S:4"),
            faults=("none",),
            modes=("exact", "analytic"),
        )
        assert len(plan) == 2 * 2 * 1 * 2
        assert len({t.fp for t in plan}) == len(plan)
        for t in plan:
            assert t.payload["schema"] == "repro.sweep-task/1"
            assert t.payload["char"] == QUICK_CHAR

    def test_duplicate_axis_values_dedupe_by_fingerprint(self):
        doubled = quick_plan(workloads=("madbench:2:4", "madbench:2:4"))
        assert len(doubled) == len(quick_plan())

    def test_fuzz_seed_and_its_own_spec_collapse(self, tmp_path):
        from repro.workloads.fuzz import fuzz_spec

        doc = fuzz_spec(0, max_phases=6)
        path = tmp_path / "seed0.json"
        path.write_text(json.dumps(doc))
        wls = collect_workloads(spec_files=[str(path)], fuzz_seeds=[0])
        plan = build_plan(["jbod"], wls, collect_faults(["none"]), ["exact"],
                          QUICK_CHAR)
        assert len(plan) == 1

    def test_config_axis_varies_fastest(self):
        plan = quick_plan(configs=("jbod", "raid1"),
                          workloads=("madbench:2:4", "btio:S:4"))
        assert [t.payload["config"] for t in plan[:2]] == ["jbod", "raid1"]

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(PlanError, match="unknown configuration"):
            quick_plan(configs=("ramdisk",))
        with pytest.raises(PlanError, match="unknown mode"):
            quick_plan(modes=("approximate",))
        with pytest.raises(PlanError, match="no workloads"):
            build_plan(["jbod"], collect_workloads(), collect_faults([]),
                       ["exact"], QUICK_CHAR)
        with pytest.raises(PlanError, match="unknown workload kind"):
            collect_workloads(named=["iozone:1"])

    def test_mode_axis_constant(self):
        assert MODES == ("exact", "analytic")


# ----------------------------------------------------------------------
# the pool, with toy worker functions (fork context: closures are fine,
# but module-level keeps them honest)
# ----------------------------------------------------------------------
def _toy_ok(payload):
    return {"result": {"doubled": payload["n"] * 2}}


def _toy_boom(payload):
    raise RuntimeError(f"injected failure for n={payload['n']}")


def _toy_hang(payload):
    if payload.get("hang"):
        time.sleep(60)
    return {"result": {"n": payload["n"]}}


def _toy_crash_once(payload):
    flag = Path(payload["flag"])
    if not flag.exists():
        flag.write_text("crashed")
        os._exit(13)
    return {"result": {"n": payload["n"]}}


def _toy_exit(payload):
    os._exit(7)


class TestRunner:
    def test_completes_all_tasks(self):
        got = {}
        runner = SweepRunner(
            _toy_ok, n_jobs=2, **RUNNER_KW,
            on_result=lambda fp, task, body: got.update({fp: body}),
        )
        tasks = [(f"fp{i}", {"n": i}) for i in range(10)]
        stats = runner.run(tasks)
        assert stats.completed == 10
        assert stats.quarantined == 0
        assert got["fp3"] == {"result": {"doubled": 6}}

    def test_error_retries_then_quarantines(self):
        quarantined = {}
        runner = SweepRunner(
            _toy_boom, n_jobs=1, max_attempts=3, **RUNNER_KW,
            on_quarantine=lambda fp, task, fails: quarantined.update({fp: fails}),
        )
        stats = runner.run([("fpX", {"n": 1})])
        assert stats.completed == 0
        assert stats.quarantined == 1
        assert stats.retries == 2
        fails = quarantined["fpX"]
        assert len(fails) == 3
        assert all(f.kind == "error" for f in fails)
        assert "injected failure" in fails[0].detail

    def test_hung_shard_times_out_without_stalling_sweep(self):
        """The sleep-injected hang is SIGKILLed at its wall-clock budget,
        retried, quarantined — and the healthy tasks still complete."""
        done = []
        quarantined = []
        runner = SweepRunner(
            _toy_hang, n_jobs=2, timeout_s=0.5, max_attempts=2,
            backoff_base_s=0.01, heartbeat_timeout_s=30.0,
            on_result=lambda fp, task, body: done.append(fp),
            on_quarantine=lambda fp, task, fails: quarantined.append(fp),
        )
        tasks = [("hang", {"n": 0, "hang": True})] + [
            (f"ok{i}", {"n": i}) for i in range(1, 5)
        ]
        stats = runner.run(tasks)
        assert sorted(done) == ["ok1", "ok2", "ok3", "ok4"]
        assert quarantined == ["hang"]
        assert stats.timeouts == 2  # both attempts hit the budget
        assert stats.respawns >= 2  # killed workers were replaced

    def test_worker_crash_retried_and_pool_survives(self, tmp_path):
        done = []
        runner = SweepRunner(
            _toy_crash_once, n_jobs=2, max_attempts=3, **RUNNER_KW,
            on_result=lambda fp, task, body: done.append(fp),
        )
        tasks = [
            (f"fp{i}", {"n": i, "flag": str(tmp_path / f"flag{i}")})
            for i in range(4)
        ]
        stats = runner.run(tasks)
        assert sorted(done) == [f"fp{i}" for i in range(4)]
        assert stats.crashes == 4  # every task crashed its first attempt
        assert stats.quarantined == 0

    def test_pool_exhaustion_raises_resumable_error(self):
        runner = SweepRunner(
            _toy_exit, n_jobs=1, max_attempts=100, max_respawns=1, **RUNNER_KW,
        )
        with pytest.raises(PoolExhaustedError, match="resume"):
            runner.run([("fp0", {"n": 0})])

    def test_backoff_is_seeded_and_exponential(self):
        a1 = backoff_s(0, "fp", 1, 0.5)
        assert a1 == backoff_s(0, "fp", 1, 0.5)
        assert a1 != backoff_s(1, "fp", 1, 0.5)
        assert a1 != backoff_s(0, "fp", 2, 0.5)
        # envelope: base * 2^(k-1) * [0.5, 1.5)
        for k in (1, 2, 3):
            b = backoff_s(7, "x", k, 0.5)
            assert 0.5 * 2 ** (k - 1) * 0.5 <= b < 0.5 * 2 ** (k - 1) * 1.5


# ----------------------------------------------------------------------
# the worker: pure function of the task
# ----------------------------------------------------------------------
class TestWorker:
    def test_result_is_pure_and_deterministic(self, tmp_path):
        task = quick_plan()[0]
        a = run_sweep_task(task.payload, cache_root=str(tmp_path / "c1"))
        b = run_sweep_task(task.payload, cache_root=str(tmp_path / "c2"))
        assert a == b
        r = a["result"]
        assert r["execution_time_s"] > 0
        assert r["workload_fingerprint"]
        assert "used" in r
        # no wall clocks, no paths
        assert "wall_s" not in r

    def test_exact_and_analytic_modes_agree(self, tmp_path):
        exact, analytic = quick_plan(modes=("exact", "analytic"))
        a = run_sweep_task(exact.payload, cache_root=str(tmp_path / "c"))
        b = run_sweep_task(analytic.payload, cache_root=str(tmp_path / "c"))
        assert a["result"] == b["result"]

    def test_faulted_task_carries_degraded_summary(self, tmp_path):
        from repro.faults import FaultSchedule, FaultSpec

        sched = tmp_path / "disk.json"
        FaultSchedule(entries=(FaultSpec(t_s=0.05, kind="disk_fail"),)).save(sched)
        plan = quick_plan(configs=("raid5",), faults=(str(sched),))
        out = run_sweep_task(plan[0].payload, cache_root=str(tmp_path / "c"))
        f = out["result"]["faults"]
        assert f is not None and f["verdict"]


# ----------------------------------------------------------------------
# end-to-end orchestration
# ----------------------------------------------------------------------
class TestOrchestration:
    def test_fresh_run_then_resume_is_noop(self, tmp_path):
        rundir = tmp_path / "run"
        plan = quick_plan(configs=("jbod", "raid1"))
        out = run_sweep(rundir, plan, params={"n_jobs": 2}, fsync=False)
        assert out.exit_code == 0
        assert out.report["integrity"]["ok"]
        assert out.report["integrity"]["completed"] == len(plan)
        before = (rundir / "results.jsonl").read_bytes()
        again = run_sweep(rundir, resume=True, fsync=False)
        assert again.exit_code == 0
        assert (rundir / "results.jsonl").read_bytes() == before

    def test_fresh_run_refuses_existing_manifest(self, tmp_path):
        rundir = tmp_path / "run"
        plan = quick_plan()
        run_sweep(rundir, plan, fsync=False)
        with pytest.raises(StoreError, match="resume"):
            run_sweep(rundir, plan, fsync=False)

    def test_torn_tail_resume_matches_uninterrupted(self, tmp_path):
        """Simulated crash: truncate the WAL mid-record, resume, and the
        merged file is byte-identical to the uninterrupted reference."""
        plan = quick_plan(configs=("jbod", "raid1"))
        ref = tmp_path / "ref"
        run_sweep(ref, plan, fsync=False)
        full = (ref / "results.jsonl").read_bytes()

        victim = tmp_path / "victim"
        run_sweep(victim, plan, fsync=False, cache_root=str(ref / "cache"))
        path = victim / "results.jsonl"
        path.write_bytes(path.read_bytes()[: len(full) - 25])  # torn tail
        out = run_sweep(victim, resume=True, fsync=False,
                        cache_root=str(ref / "cache"))
        assert out.exit_code == 0
        assert path.read_bytes() == full

    def test_sigkill_resume_byte_identity(self, tmp_path):
        """The headline property: SIGKILL the orchestrator mid-run, then
        ``--resume`` converges on records byte-identical (order-
        normalised by fingerprint) to an uninterrupted run."""
        plan = quick_plan(
            configs=("jbod", "raid1", "raid5"),
            workloads=("madbench:2:4", "btio:S:4"),
        )
        ref = tmp_path / "ref"
        run_sweep(ref, plan, fsync=False)
        reference = sorted((ref / "results.jsonl").read_bytes().splitlines())

        victim = tmp_path / "victim"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                str(Path(__file__).resolve().parents[1] / "src"),
                str(Path(__file__).resolve().parent),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        code = (
            "from test_sweep import quick_plan\n"
            "from repro.sweep import run_sweep\n"
            f"run_sweep({str(victim)!r}, quick_plan(configs=('jbod', 'raid1', "
            "'raid5'), workloads=('madbench:2:4', 'btio:S:4')))\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", code], env=env)
        results = victim / "results.jsonl"
        deadline = time.time() + 120
        while time.time() < deadline:
            if results.exists() and results.stat().st_size > 0:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.002)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        out = run_sweep(victim, resume=True, fsync=False)
        assert out.exit_code == 0
        merged = sorted(results.read_bytes().splitlines())
        assert merged == reference

    def test_quarantine_surfaces_in_report_and_exit_code(self, tmp_path, monkeypatch):
        import repro.sweep.orchestrate as orch

        def poisoned(payload, cache_root=None):
            raise RuntimeError("poisoned task")

        monkeypatch.setattr(orch, "run_sweep_task", poisoned)
        plan = quick_plan()
        out = run_sweep(
            tmp_path / "run", plan, fsync=False,
            params={"max_attempts": 2, "backoff_base_s": 0.01},
        )
        assert out.exit_code == 1
        assert out.report["integrity"]["quarantined"] == 1
        (q,) = out.report["quarantine"]
        assert q["attempts"] == 2
        assert "poisoned task" in q["last_error"]

    def test_report_distributions_and_correlations(self, tmp_path):
        from repro.faults import FaultSchedule, FaultSpec

        sched = tmp_path / "disk.json"
        FaultSchedule(entries=(FaultSpec(t_s=0.05, kind="disk_fail"),)).save(sched)
        plan = quick_plan(
            configs=("raid1", "raid5"),
            workloads=("madbench:2:4", "madbench:2:8"),
            faults=("none", str(sched)),
        )
        out = run_sweep(tmp_path / "run", plan, fsync=False)
        assert out.exit_code == 0
        dist = out.report["distributions"]["run"]["io_time_s"]
        assert dist["n"] == len(plan)
        assert dist["min"] <= dist["median"] <= dist["p95"] <= dist["max"]
        corr = out.report["correlations"]["io_time_s"]
        assert "faulted" in corr and "nprocs" in corr
        report_path = tmp_path / "run" / "sweep_report.json"
        assert json.loads(report_path.read_text())["schema"] == \
            "repro.sweep-report/1"

    def test_verify_only_detects_missing_records(self, tmp_path):
        rundir = tmp_path / "run"
        plan = quick_plan(configs=("jbod", "raid1"))
        run_sweep(rundir, plan, fsync=False)
        lines = (rundir / "results.jsonl").read_text().splitlines(keepends=True)
        (rundir / "results.jsonl").write_text("".join(lines[:-1]))
        out = run_sweep(rundir, verify_only=True, fsync=False)
        assert out.exit_code == 1
        assert not out.report["integrity"]["ok"]
        assert len(out.report["integrity"]["missing"]) == 1
