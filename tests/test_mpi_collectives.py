"""Collective-operation tests: synchronisation semantics and cost shapes."""

import pytest

from repro.simengine import Environment
from repro.clusters.builder import build_system
from conftest import small_config


def make_world(nprocs=4, n_compute=4):
    system = build_system(Environment(), small_config(n_compute=n_compute))
    return system, system.world(nprocs)


def test_barrier_synchronises_ranks():
    system, w = make_world(4)
    after = {}

    def prog(mpi):
        yield mpi.compute(seconds=0.1 * (mpi.rank + 1))  # staggered arrivals
        yield mpi.barrier()
        after[mpi.rank] = mpi.now

    system.env.run(w.run_program(prog))
    times = list(after.values())
    assert max(times) - min(times) < 1e-6
    assert min(times) >= 0.4  # slowest rank gates everyone


def test_bcast_delivers_root_payload():
    system, w = make_world(4)
    got = {}

    def prog(mpi):
        payload = {"cfg": 42} if mpi.rank == 2 else None
        data = yield mpi.bcast(2, 4096, payload)
        got[mpi.rank] = data

    system.env.run(w.run_program(prog))
    assert all(v == {"cfg": 42} for v in got.values())


def test_bcast_cost_grows_with_size():
    def run_one(nbytes):
        system, w = make_world(4)

        def prog(mpi):
            yield mpi.bcast(0, nbytes, b"" if mpi.rank == 0 else None)

        system.env.run(w.run_program(prog))
        return system.env.now

    assert run_one(10 * 1024 * 1024) > run_one(1024)


def test_allreduce_slower_than_barrier():
    def run_coll(which):
        system, w = make_world(4)

        def prog(mpi):
            if which == "barrier":
                yield mpi.barrier()
            else:
                yield mpi.allreduce(1024 * 1024)

        system.env.run(w.run_program(prog))
        return system.env.now

    assert run_coll("allreduce") > run_coll("barrier")


def test_gather_serialises_at_root_link():
    system, w = make_world(4)

    def prog(mpi):
        yield mpi.gather(0, 10 * 1024 * 1024)

    system.env.run(w.run_program(prog))
    net = system.cluster.comm_network
    # three senders' bytes all crossed the root's downlink
    root = w.node_of(0).name
    assert net.downlinks[root].bytes_carried >= 3 * 10 * 1024 * 1024


def test_allgather_moves_p_minus_1_blocks_per_rank():
    system, w = make_world(4)

    def prog(mpi):
        yield mpi.allgather(1024 * 1024)

    system.env.run(w.run_program(prog))
    net = system.cluster.comm_network
    total = sum(l.bytes_carried for l in net.uplinks.values())
    assert total >= 4 * 3 * 1024 * 1024 * 0.9


def test_alltoall_completes_and_scales():
    def run_one(p):
        system, w = make_world(p, n_compute=4)

        def prog(mpi):
            yield mpi.alltoall(256 * 1024)

        system.env.run(w.run_program(prog))
        return system.env.now

    assert run_one(8) > run_one(2)


def test_reduce_charges_arithmetic():
    system, w = make_world(2)

    def prog(mpi):
        yield mpi.reduce(0, 8 * 1024 * 1024)

    system.env.run(w.run_program(prog))
    assert system.env.now > 0


def test_collectives_in_same_order_do_not_deadlock():
    system, w = make_world(4)

    def prog(mpi):
        for _ in range(5):
            yield mpi.barrier()
            yield mpi.bcast(0, 64, None if mpi.rank else b"x")
            yield mpi.allreduce(64)
        return "done"

    values = system.env.run(w.run_program(prog))
    assert values == ["done"] * 4
