"""Configuration-analysis tests: factor extraction, diffs, ranking."""

import pytest

from repro.clusters import aohyper_config, cluster_a_config
from repro.core.characterize import AppMeasure, AppProfile
from repro.core.factors import diff_factors, extract_factors, rank_configurations
from repro.core.perftable import PerfRow, PerformanceTable
from repro.storage.base import AccessMode, AccessType, MiB


class TestExtraction:
    def test_aohyper_raid5_factors(self):
        f = extract_factors(aohyper_config("raid5"))
        assert f.server_organization == "raid5"
        assert f.n_server_devices == 5
        assert f.stripe_bytes == 256 * 1024
        assert f.n_networks == 2
        assert f.data_redundancy
        assert not f.service_redundancy

    def test_jbod_has_no_redundancy(self):
        f = extract_factors(aohyper_config("jbod"))
        assert not f.data_redundancy
        assert f.server_organization == "jbod"

    def test_cluster_a_factors(self):
        f = extract_factors(cluster_a_config())
        assert f.local_organization == "jbod"
        assert f.server_organization == "raid5"
        assert f.dedicated_data_network

    def test_as_dict_complete(self):
        d = extract_factors(aohyper_config("raid1")).as_dict()
        assert d["server_organization"] == "raid1"
        assert "client_cache" in d and "n_io_nodes" in d


class TestDiff:
    def test_diff_reports_changed_factors_only(self):
        a = extract_factors(aohyper_config("jbod"))
        b = extract_factors(aohyper_config("raid5"))
        d = diff_factors(a, b)
        assert "server_organization" in d
        assert d["server_organization"] == ("jbod", "raid5")
        assert "n_networks" not in d

    def test_diff_identical_empty(self):
        a = extract_factors(aohyper_config("raid1"))
        b = extract_factors(aohyper_config("raid1"))
        assert diff_factors(a, b) == {}


def make_profile(write_bytes=100, read_bytes=0):
    p = AppProfile(nprocs=4)
    if write_bytes:
        p.measures.append(
            AppMeasure("write", 1 * MiB, AccessMode.SEQUENTIAL, AccessType.GLOBAL, 1, write_bytes, 1.0)
        )
    if read_bytes:
        p.measures.append(
            AppMeasure("read", 1 * MiB, AccessMode.SEQUENTIAL, AccessType.GLOBAL, 1, read_bytes, 1.0)
        )
    return p


def tables_for(name, write_rate, read_rate):
    t = PerformanceTable("nfs")
    t.add(PerfRow("write", 1 * MiB, AccessType.GLOBAL, AccessMode.SEQUENTIAL, write_rate))
    t.add(PerfRow("read", 1 * MiB, AccessType.GLOBAL, AccessMode.SEQUENTIAL, read_rate))
    return {"nfs": t}


class TestRanking:
    def test_weighting_follows_dominant_operation(self):
        """A write-heavy app prefers the write-fast config; the paper:
        'analyze the operation with more weight'."""
        tables = {
            "wfast": tables_for("wfast", write_rate=200.0, read_rate=10.0),
            "rfast": tables_for("rfast", write_rate=10.0, read_rate=200.0),
        }
        write_heavy = make_profile(write_bytes=1000, read_bytes=10)
        ranked = rank_configurations(write_heavy, tables)
        assert ranked[0].name == "wfast"
        read_heavy = make_profile(write_bytes=10, read_bytes=1000)
        ranked = rank_configurations(read_heavy, tables)
        assert ranked[0].name == "rfast"

    def test_redundancy_requirement_filters(self):
        tables = {
            "jbod": tables_for("jbod", 300.0, 300.0),
            "raid1": tables_for("raid1", 100.0, 100.0),
        }
        factors = {
            "jbod": extract_factors(aohyper_config("jbod")),
            "raid1": extract_factors(aohyper_config("raid1")),
        }
        ranked = rank_configurations(
            make_profile(), tables, require_redundancy=True, factors_by_config=factors
        )
        assert [s.name for s in ranked] == ["raid1"]

    def test_missing_level_skipped(self):
        ranked = rank_configurations(make_profile(), {"x": {}})
        assert ranked == []

    def test_scores_sorted_descending(self):
        tables = {
            "slow": tables_for("slow", 10.0, 10.0),
            "fast": tables_for("fast", 100.0, 100.0),
            "mid": tables_for("mid", 50.0, 50.0),
        }
        ranked = rank_configurations(make_profile(), tables)
        assert [s.name for s in ranked] == ["fast", "mid", "slow"]
