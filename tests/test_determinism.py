"""Reproducibility: identical runs produce identical simulated clocks."""

from repro.simengine import Environment
from repro.clusters.builder import build_system
from repro.storage.base import KiB, MiB
from repro.workloads import run_iozone, run_ior
from repro.workloads.btio import BTIOConfig, run_btio
from repro.workloads.madbench import MadBenchConfig, run_madbench
from conftest import small_config


def test_iozone_deterministic():
    def once():
        system = build_system(Environment(), small_config())
        res = run_iozone(system, "n0", "/local/z", file_bytes=16 * MiB,
                         block_sizes=(256 * KiB,), include_strided=True, include_random=True)
        return [(r.test, r.rate_Bps) for r in res.rows]

    assert once() == once()


def test_ior_deterministic():
    def once():
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_ior(system, 4, block_sizes=(1 * MiB,), file_bytes=8 * MiB)
        return [(r.op, r.aggregate_rate_Bps, r.elapsed_s) for r in res.rows]

    assert once() == once()


def test_btio_deterministic():
    def once():
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_btio(system, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
        return (res.execution_time, res.io_time, res.write_time, res.read_time)

    assert once() == once()


def test_btio_simple_deterministic():
    def once():
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_btio(system, BTIOConfig(clazz="S", nprocs=4, subtype="simple", path="/nfs/bt"))
        return (res.execution_time, res.io_time)

    assert once() == once()


def test_madbench_deterministic():
    def once():
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_madbench(
            system,
            MadBenchConfig(kpix=1, nbin=2, nprocs=2, filetype="shared", path="/nfs/mb", busywork_s=0.01),
        )
        return (res.execution_time, res.time("S_w"), res.time("C_r"))

    assert once() == once()


def test_trace_event_stream_identical():
    def once():
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_btio(system, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
        return [(e.rank, e.op, e.t_start, e.t_end) for e in res.tracer.events]

    assert once() == once()
