"""`repro report` CLI: output files and fastpath verdict identity."""

import csv
import io
import json
import os

import pytest

from repro.cli import main

BT_ARGS = ["btio", "--class", "S", "--nprocs", "4", "--subtype", "full",
           "--block-step", "9", "--ior-gib", "1"]


@pytest.fixture(autouse=True)
def _restore_fastpath_env():
    """main() exports REPRO_NO_PHASE_FASTPATH for worker processes;
    keep it from leaking between runs/tests."""
    prior = os.environ.get("REPRO_NO_PHASE_FASTPATH")
    yield
    if prior is None:
        os.environ.pop("REPRO_NO_PHASE_FASTPATH", None)
    else:
        os.environ["REPRO_NO_PHASE_FASTPATH"] = prior


def _report(tmp_path, tag, extra=(), configs=("jbod",)):
    out = tmp_path / f"report-{tag}.json"
    rc = main(["report", *BT_ARGS,
               "--configs", *configs,
               "--cache", str(tmp_path / "cache"),
               "--json", str(out), *extra])
    assert rc == 0
    return json.loads(out.read_text())


def test_report_json_sections(tmp_path):
    report = _report(tmp_path, "base")
    assert report["schema"] == "repro.run-report/1"
    assert report["app"].startswith("btio")
    entry = report["configs"]["jbod"]
    # "sanitizer" appears only when the run was sanitized (REPRO_SANITIZE=1)
    assert set(entry) - {"sanitizer"} == {"run", "verdicts", "counters",
                                          "histograms", "utilization", "replay"}
    # per-level counters for every level of the I/O path
    assert set(entry["counters"]) == {"iolib", "nfs", "localfs", "cache",
                                      "disk", "network"}
    assert entry["counters"]["iolib"]["writes"] > 0
    assert entry["counters"]["disk"]["bytes_written"] > 0
    # windowed utilization with bottleneck attribution
    util = entry["utilization"]
    assert util["interval_s"] > 0
    assert util["windows"], "expected sampled windows"
    assert all({"t0_s", "t1_s", "bottleneck", "top"} <= set(w)
               for w in util["windows"])
    # phase-replay observability
    replay = entry["replay"]
    assert {"enabled", "phases_fully_simulated", "phases_extrapolated",
            "estimated_saved_wall_s"} <= set(replay)
    assert report["verdicts"]["jbod"] == entry["verdicts"]
    assert set(entry["verdicts"]) == {"write", "read"}


def test_report_csv_and_trace_outputs(tmp_path):
    csv_path = tmp_path / "report.csv"
    trace_path = tmp_path / "trace.json"
    rc = main(["report", *BT_ARGS, "--configs", "jbod",
               "--cache", str(tmp_path / "cache"),
               "--csv", str(csv_path),
               "--trace-out", str(trace_path), "--trace-format", "chrome"])
    assert rc == 0
    rows = list(csv.reader(io.StringIO(csv_path.read_text())))
    assert rows[0] == ["config", "key", "value"]
    keys = {r[1] for r in rows if r[0] == "jbod"}
    assert "run.execution_time_s" in keys
    assert "counters.disk.bytes_written" in keys
    doc = json.loads(trace_path.read_text())
    assert doc["otherData"]["schema"] == "repro.trace/1"
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
    assert "jbod" in doc["otherData"]["replay"]


def test_report_jsonl_trace(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    rc = main(["report", *BT_ARGS, "--configs", "jbod",
               "--cache", str(tmp_path / "cache"),
               "--trace-out", str(trace_path), "--trace-format", "jsonl"])
    assert rc == 0
    lines = trace_path.read_text().splitlines()
    assert json.loads(lines[0])["type"] == "meta"
    assert all(json.loads(l)["type"] == "io" for l in lines[1:])
    assert len(lines) > 1


def test_report_portable_csv_trace_replays(tmp_path):
    """Satellite: `--trace-format csv` emits a portable capture that
    loads back through the ingest layer as a runnable workload."""
    from repro.tracing import load_trace, load_trace_workload

    trace_path = tmp_path / "capture.csv"
    rc = main(["report", *BT_ARGS, "--configs", "jbod",
               "--cache", str(tmp_path / "cache"),
               "--trace-out", str(trace_path), "--trace-format", "csv"])
    assert rc == 0
    text = trace_path.read_text()
    assert text.startswith("#repro-trace v1 world_size=4")
    tracer = load_trace(trace_path)
    assert tracer.nranks == 4
    assert tracer.events
    app = load_trace_workload(trace_path)
    assert app.name == "trace-capture"
    assert app.spec.nprocs == 4


def test_report_csv_trace_one_file_per_config(tmp_path):
    trace_path = tmp_path / "capture.csv"
    rc = main(["report", *BT_ARGS, "--configs", "jbod", "raid5",
               "--cache", str(tmp_path / "cache"),
               "--trace-out", str(trace_path), "--trace-format", "csv"])
    assert rc == 0
    names = sorted(p.name for p in tmp_path.glob("capture*.csv"))
    assert names == ["capture.jbod.csv", "capture.raid5.csv"]


def test_report_verdicts_identical_with_and_without_fastpath(tmp_path):
    """Satellite: the bottleneck verdicts `repro report --json` emits
    must be byte-identical with the phase fastpath on and off (physical
    counters may differ — extrapolated phases never touch hardware)."""
    configs = ("jbod", "raid5")
    fast = _report(tmp_path, "fast", configs=configs)
    full = _report(tmp_path, "full", extra=["--no-phase-fastpath"],
                   configs=configs)
    assert fast["configs"]["jbod"]["replay"]["enabled"]
    assert not full["configs"]["jbod"]["replay"]["enabled"]
    assert (json.dumps(fast["verdicts"], sort_keys=True)
            == json.dumps(full["verdicts"], sort_keys=True))
    for name in configs:
        assert (fast["configs"][name]["verdicts"]
                == full["configs"][name]["verdicts"])
