"""Disk model tests: mechanics, readahead, bulk geometry, fairness."""

import pytest

from repro.simengine import Environment
from repro.hardware.disk import Disk, DiskSpec, READ, WRITE
from repro.storage.base import KiB, MiB


def make_disk(env, **kw):
    return Disk(env, DiskSpec(**kw))


def test_sequential_read_rate_near_outer_media_rate():
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(READ, 0, 1 * MiB, count=64))
    rate = 64 * MiB / env.now
    assert 0.9 * d.spec.outer_rate_Bps <= rate <= d.spec.outer_rate_Bps


def test_inner_tracks_slower_than_outer():
    env = Environment()
    d = make_disk(env)
    assert d.spec.media_rate(0) > d.spec.media_rate(d.spec.capacity_bytes)
    assert d.spec.media_rate(d.spec.capacity_bytes) == pytest.approx(d.spec.inner_rate_Bps)


def test_random_small_reads_are_iops_bound():
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(READ, 0, 4 * KiB, count=500, stride=40 * MiB))
    iops = 500 / env.now
    # a 7200rpm disk with long seeks does roughly 100-250 IOPS
    assert 80 < iops < 300


def test_short_forward_skip_is_cheap():
    """Strided access with small holes streams near media rate."""
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(READ, 0, 4 * KiB, count=1000, stride=8 * KiB))
    span_rate = 8 * KiB * 1000 / env.now
    assert span_rate > 0.7 * d.spec.outer_rate_Bps


def test_readahead_hit_skips_positioning():
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(READ, 0, 64 * KiB))
    env.run(d.submit(WRITE, 1024 * MiB, 4 * KiB))  # move the head away
    hits0 = d.stats.readahead_hits
    t0 = env.now
    env.run(d.submit(READ, 64 * KiB, 64 * KiB))  # inside readahead window
    assert d.stats.readahead_hits == hits0 + 1
    dt = env.now - t0
    # no seek/rotation despite the head being elsewhere
    assert dt < d.spec.half_rotation_s


def test_write_invalidates_overlapping_readahead():
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(READ, 0, 64 * KiB))
    env.run(d.submit(WRITE, 32 * KiB, 8 * KiB))
    hits = d.stats.readahead_hits
    env.run(d.submit(READ, 64 * KiB, 16 * KiB))
    assert d.stats.readahead_hits == hits  # window was invalidated


def test_bulk_contiguous_matches_repeated_singles_approximately():
    env1 = Environment()
    d1 = make_disk(env1)
    env1.run(d1.submit(READ, 0, 256 * KiB, count=16))
    bulk = env1.now

    env2 = Environment()
    d2 = make_disk(env2)

    def singles():
        for k in range(16):
            yield d2.submit(READ, k * 256 * KiB, 256 * KiB)

    env2.run(env2.process(singles()))
    assert bulk == pytest.approx(env2.now, rel=0.05)


def test_stats_accumulate():
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(WRITE, 0, 1 * MiB, count=4))
    env.run(d.submit(READ, 0, 1 * MiB, count=2))
    assert d.stats.writes == 4
    assert d.stats.reads == 2
    assert d.stats.bytes_written == 4 * MiB
    assert d.stats.bytes_read == 2 * MiB
    assert 0 < d.utilization <= 1.0


def test_invalid_requests_rejected():
    env = Environment()
    d = make_disk(env)
    with pytest.raises(ValueError):
        d.service_time("append", 0, 4096)
    with pytest.raises(ValueError):
        d.service_time(READ, 0, -1)
    with pytest.raises(ValueError):
        d.service_time(READ, 0, 4096, count=0)


def test_concurrent_requests_share_head_fairly():
    """Two equal bulk streams finish near-simultaneously (quantum interleave)."""
    env = Environment()
    d = make_disk(env)
    done = {}

    def stream(tag, base):
        yield d.submit(READ, base, 1 * MiB, count=32)
        done[tag] = env.now

    env.process(stream("a", 0))
    env.process(stream("b", 512 * MiB))
    env.run()
    assert abs(done["a"] - done["b"]) < 0.25 * max(done.values())


def test_random_marker_stride():
    env = Environment()
    d = make_disk(env)
    env.run(d.submit(READ, 0, 4 * KiB, count=100, stride=-1))
    iops = 100 / env.now
    assert iops < 2000  # not treated as sequential
