"""Characterization-phase tests: system tables and application profiles."""

import pytest

from repro.core.characterize import (
    characterize_app,
    characterize_level,
    characterize_system,
)
from repro.storage.base import AccessMode, AccessType, KiB, MiB
from repro.tracing import IOEvent, IOTracer
from conftest import small_config

BLOCKS = (64 * KiB, 1 * MiB)
KW = dict(block_sizes=BLOCKS, file_bytes=16 * MiB, ior_nprocs=2, ior_file_bytes=8 * MiB)


class TestSystemCharacterization:
    def test_localfs_level_rows_local_access(self):
        t = characterize_level(small_config(), "localfs", **KW)
        assert t.level == "localfs"
        assert len(t) == 2 * len(BLOCKS)  # read+write per block
        assert all(r.access is AccessType.LOCAL for r in t.rows)
        assert all(r.mode is AccessMode.SEQUENTIAL for r in t.rows)

    def test_nfs_level_rows_global_access(self):
        t = characterize_level(small_config(), "nfs", **KW)
        assert all(r.access is AccessType.GLOBAL for r in t.rows)
        assert t.lookup("write", 1 * MiB, AccessType.GLOBAL) > 0

    def test_iolib_level_uses_ior(self):
        t = characterize_level(small_config(), "iolib", **KW)
        assert len(t) == 2  # only the >=1MiB block
        assert t.lookup("read", 1 * MiB, AccessType.GLOBAL) > 0

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            characterize_level(small_config(), "tape", **KW)

    def test_characterize_system_all_levels(self):
        tables = characterize_system(small_config(), **KW)
        assert set(tables) == {"iolib", "nfs", "localfs"}

    def test_best_rate_kept_for_duplicate_keys(self):
        """write vs rewrite: the table keeps the better (capacity)."""
        t = characterize_level(small_config(), "localfs", **KW)
        blocks = {r.block_bytes for r in t.rows if r.op == "write"}
        assert blocks == set(BLOCKS)  # one row per block, not two


def make_tracer():
    t = IOTracer()
    for rank in range(2):
        t.record(rank, IOEvent(rank, "write", 0, 1 * MiB, 10, None, 0.0, 2.0, "/f"))
        t.record(rank, IOEvent(rank, "read", 0, 64 * KiB, 100, 128 * KiB, 2.0, 3.0, "/f"))
    return t


class TestAppCharacterization:
    def test_measures_grouped_by_geometry(self):
        profile = characterize_app(make_tracer())
        assert profile.nprocs == 2
        assert len(profile.measures) == 2
        w = profile.measure("write")
        assert w.block_bytes == 1 * MiB
        assert w.n_ops == 20
        assert w.mode is AccessMode.SEQUENTIAL
        r = profile.measure("read")
        assert r.mode is AccessMode.STRIDED

    def test_rates_are_aggregate(self):
        profile = characterize_app(make_tracer())
        w = profile.measure("write")
        # 20 MiB over mean-per-rank 2s
        assert w.rate_Bps == pytest.approx(20 * MiB / 2.0)

    def test_bytes_split_by_op(self):
        profile = characterize_app(make_tracer())
        assert profile.bytes_written == 2 * 10 * MiB
        assert profile.bytes_read == 2 * 100 * 64 * KiB

    def test_io_time_mean_per_rank(self):
        profile = characterize_app(make_tracer())
        assert profile.io_time_s == pytest.approx(3.0)

    def test_phases_detected(self):
        profile = characterize_app(make_tracer())
        assert len(profile.phases) == 2

    def test_requirement_summary(self):
        s = characterize_app(make_tracer()).requirement_summary()
        assert s["numio_write"] == 20
        assert s["numio_read"] == 200
        assert s["block_bytes_write"] == [1 * MiB]
        assert s["nprocs"] == 2

    def test_iops(self):
        profile = characterize_app(make_tracer())
        assert profile.iops == pytest.approx(220 / 3.0)

    def test_empty_tracer(self):
        profile = characterize_app(IOTracer())
        assert profile.measures == []
        assert profile.measure("write") is None
        assert profile.iops == 0.0
