"""Observability subsystem: MetricsRegistry, sampler, warm-run deltas."""

import pytest

from conftest import small_config
from repro.clusters.builder import build_system, warm_system
from repro.core.utilization import capture_utilization
from repro.obs.metrics import LEVELS, Histogram, IOLibStats, MetricsRegistry
from repro.obs.sampler import UtilizationSampler
from repro.simengine import Environment
from repro.storage.base import IORequest, MiB
from repro.workloads.btio import BTIOConfig, run_btio

BT_SMALL = BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt")


def test_histogram_buckets():
    h = Histogram()
    h.add(0)
    h.add(1)
    h.add(1024)
    h.add(1500)
    h.add(65536, n=3)
    assert h.counts[0] == 2  # 0 and 1
    assert h.counts[10] == 2  # 1024 and 1500
    assert h.counts[16] == 3
    assert h.total == 7
    assert list(h.as_dict()) == ["2^0", "2^10", "2^16"]


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.add(8)
    b.add(8)
    b.add(64)
    a.merge(b)
    assert a.counts == {3: 2, 6: 1}


def test_iolib_stats_record():
    s = IOLibStats()
    s.record("write", 4096, 2, collective=True, duration_s=0.5)
    s.record("read", 1024, 1, collective=False, duration_s=0.25)
    c = s.counters()
    assert c["writes"] == 1 and c["reads"] == 1
    assert c["bytes_written"] == 8192 and c["bytes_read"] == 1024
    assert c["collective_ops"] == 1 and c["independent_ops"] == 1
    assert c["io_time_s"] == pytest.approx(0.75)
    h = s.histograms()
    assert h["write_sizes"] == {"2^12": 2}
    assert h["read_latency_us"] == {"2^17": 1}  # 250000 us


def test_registry_levels_and_deltas():
    system = build_system(Environment(), small_config())
    registry = MetricsRegistry(system)
    registry.begin_run(window_s=0.05)
    run_btio(system, BT_SMALL)
    registry.end_run()
    deltas = registry.deltas()
    assert set(deltas) == set(LEVELS)
    assert deltas["iolib"]["writes"] > 0
    assert deltas["iolib"]["collective_ops"] > 0
    assert deltas["nfs"]["rpcs"] > 0
    assert deltas["localfs"]["bytes_written"] > 0
    assert deltas["disk"]["bytes_written"] > 0
    assert deltas["network"]["bytes_carried"] > 0
    assert registry.histograms()["iolib"]["write_sizes"]


def test_registry_warm_run_reports_per_run_deltas():
    """A reused (reset) system must report the run's own deltas, not
    lifetime totals — the tentpole's snapshot/diff requirement."""
    system = build_system(Environment(), small_config())

    def one_run():
        registry = MetricsRegistry(system)
        registry.begin_run(window_s=0.05)
        run_btio(system, BT_SMALL)
        registry.end_run()
        return registry.deltas()

    first = one_run()
    system.reset()
    second = one_run()
    assert set(first) == set(second)
    for level in first:
        assert set(first[level]) == set(second[level]), level
        for key, v in first[level].items():
            assert second[level][key] == pytest.approx(v), (level, key)


def test_registry_utilization_report_windows():
    system = build_system(Environment(), small_config())
    registry = MetricsRegistry(system)
    registry.begin_run(window_s=0.05)
    run_btio(system, BT_SMALL)
    registry.end_run()
    report = registry.utilization_report()
    assert report.windows, "sampler should have produced windows"
    # windows are contiguous and cover the run
    for a, b in zip(report.windows, report.windows[1:]):
        assert b.t0_s == pytest.approx(a.t1_s)
    assert report.windows[0].t0_s == pytest.approx(0.0)
    # per-window busy sums equal the cumulative interval busy
    total_by_resource = {}
    for w in report.windows:
        for name, busy in w.busy.items():
            total_by_resource[name] = total_by_resource.get(name, 0.0) + busy
    for r in report.resources:
        if r.busy_s > 0:
            assert total_by_resource.get(r.name, 0.0) == pytest.approx(r.busy_s)
    # bottleneck attribution is well-formed
    for w, name in report.window_bottlenecks():
        assert name is None or name in w.busy


def test_sampler_merges_windows_and_doubles_width():
    system = build_system(Environment(), small_config())
    env = system.env
    sampler = UtilizationSampler(system, window_s=0.01, max_windows=4)
    sampler.start()
    fs = system.export
    inode = env.run(fs.create("/f"))
    env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=32)))
    env.run(env.timeout(0.2))
    sampler.stop()
    assert len(sampler.windows) <= 5  # 4 + partial tail
    assert sampler.window_s > 0.01  # doubled at least once
    for a, b in zip(sampler.windows, sampler.windows[1:]):
        assert b.t0_s == pytest.approx(a.t1_s)


def test_instrumentation_preserves_run_results():
    """The sampler only reads state: an instrumented run's simulated
    timings are identical to an uninstrumented one."""
    plain = build_system(Environment(), small_config())
    res_plain = run_btio(plain, BT_SMALL)

    inst = build_system(Environment(), small_config())
    registry = MetricsRegistry(inst)
    registry.begin_run(window_s=0.01)
    res_inst = run_btio(inst, BT_SMALL)
    registry.end_run()
    assert res_inst.execution_time == res_plain.execution_time
    assert res_inst.io_time == res_plain.io_time


def test_warm_pool_two_configs_match_cold_builds():
    """Satellite regression: alternate two configs on one warm pool;
    every warm run must be indistinguishable from a cold build (the
    full per-component reset chain, including busy counters)."""
    configs = [small_config("jbod"), small_config("raid5")]

    def counters_after_run(system):
        res = run_btio(system, BT_SMALL)
        registry = MetricsRegistry(system)
        snap = registry.snapshot()
        busy = {n: kb[1] for n, kb in capture_utilization(system).busy.items()}
        return res.execution_time, snap.values, busy

    cold = [counters_after_run(build_system(Environment(), c)) for c in configs]
    # two interleaved rounds on the warm pool: the second round reuses
    # systems that already ran once
    for round_ in range(2):
        for c, (cold_t, cold_counters, cold_busy) in zip(configs, cold):
            warm = warm_system(c)
            t, counters, busy = counters_after_run(warm)
            assert t == cold_t, (round_, c.name)
            assert counters == cold_counters, (round_, c.name)
            assert busy == cold_busy, (round_, c.name)
