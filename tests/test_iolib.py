"""Tests for the I/O-library internals: sieving plans and aggregation."""

import pytest

from repro.iolib import (
    all_ranks,
    DEFAULT_BUFFER,
    fixed_count,
    one_per_node,
    plan_sieve,
    select_aggregators,
    should_sieve,
)
from repro.storage.base import IORequest, KiB, MiB


class TestShouldSieve:
    def test_dense_never_sieved(self):
        assert not should_sieve(IORequest("read", 0, 1 * MiB, count=4))

    def test_random_never_sieved(self):
        assert not should_sieve(IORequest("read", 0, 4 * KiB, count=100, stride=-1))

    def test_single_op_never_sieved(self):
        assert not should_sieve(IORequest("read", 0, 4 * KiB))

    def test_dense_enough_strided_sieved(self):
        # BT-IO's regime: 1600B pieces every 6480B -> density ~0.25
        assert should_sieve(IORequest("read", 0, 1600, count=1000, stride=6480))

    def test_too_sparse_not_sieved(self):
        assert not should_sieve(IORequest("read", 0, 1 * KiB, count=100, stride=64 * KiB))

    def test_large_pieces_not_sieved(self):
        assert not should_sieve(IORequest("read", 0, 2 * MiB, count=8, stride=4 * MiB))


class TestPlanSieve:
    def test_covers_span_exactly(self):
        req = IORequest("read", 1000, 1600, count=100, stride=6480)
        plan = plan_sieve(req, buffer_bytes=64 * KiB)
        assert sum(r.nbytes for r in plan.requests) == req.span
        assert plan.requests[0].offset == 1000
        # contiguous, ordered chunks
        for a, b in zip(plan.requests, plan.requests[1:]):
            assert b.offset == a.offset + a.nbytes

    def test_chunks_bounded_by_buffer(self):
        req = IORequest("read", 0, 1600, count=1000, stride=6480)
        plan = plan_sieve(req, buffer_bytes=64 * KiB)
        assert all(r.nbytes <= 64 * KiB for r in plan.requests)

    def test_efficiency(self):
        req = IORequest("read", 0, 1600, count=100, stride=3200)
        plan = plan_sieve(req)
        assert plan.efficiency == pytest.approx(req.total_bytes / req.span)

    def test_bad_buffer_rejected(self):
        with pytest.raises(ValueError):
            plan_sieve(IORequest("read", 0, 10, count=2, stride=20), buffer_bytes=0)

    def test_op_preserved(self):
        req = IORequest("write", 0, 10, count=4, stride=20)
        plan = plan_sieve(req)
        assert all(r.op == "write" for r in plan.requests)


class TestAggregation:
    NODES = ["n0", "n0", "n1", "n1", "n2", "n2"]

    def test_one_per_node(self):
        assert one_per_node(self.NODES) == [0, 2, 4]

    def test_fixed_count_subset(self):
        assert fixed_count(self.NODES, 2) == [0, 2]

    def test_fixed_count_more_than_nodes(self):
        out = fixed_count(self.NODES, 5)
        assert len(out) == 5
        assert set([0, 2, 4]).issubset(out)

    def test_fixed_count_validation(self):
        with pytest.raises(ValueError):
            fixed_count(self.NODES, 0)

    def test_all_ranks(self):
        assert all_ranks(self.NODES) == list(range(6))

    def test_select_dispatch(self):
        assert select_aggregators(self.NODES, None) == [0, 2, 4]
        assert select_aggregators(self.NODES, 2) == [0, 2]
        assert select_aggregators(self.NODES, 6) == list(range(6))
        assert select_aggregators(self.NODES, 100) == list(range(6))

    def test_default_buffer_sane(self):
        assert DEFAULT_BUFFER == 4 * MiB
