"""Failure injection: degraded-mode RAID service and data loss."""

import pytest

from repro.simengine import Environment
from repro.hardware.raid import RAIDArray, RAIDConfig, RAIDLevel
from repro.storage.base import KiB, MiB
from conftest import SMALL_DISK


def make(level, ndisks, write_back=False):
    env = Environment()
    return env, RAIDArray(env, RAIDConfig(level=level, ndisks=ndisks, disk=SMALL_DISK,
                                          write_back=write_back))


class TestSurvival:
    def test_jbod_dies(self):
        env, arr = make(RAIDLevel.JBOD, 1)
        arr.fail_disk(0)
        assert not arr.survives_failures
        with pytest.raises(RuntimeError, match="lost data"):
            arr.submit("read", 0, 4 * KiB)

    def test_raid0_dies(self):
        env, arr = make(RAIDLevel.RAID0, 4)
        arr.fail_disk(2)
        assert not arr.survives_failures

    def test_raid1_survives_one(self):
        env, arr = make(RAIDLevel.RAID1, 2)
        arr.fail_disk(0)
        assert arr.survives_failures
        assert arr.degraded
        env.run(arr.submit("read", 0, 1 * MiB))

    def test_raid1_dies_when_all_mirrors_fail(self):
        env, arr = make(RAIDLevel.RAID1, 2)
        arr.fail_disk(0)
        arr.fail_disk(1)
        assert not arr.survives_failures

    def test_raid5_survives_one_not_two(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(1)
        assert arr.survives_failures
        arr.fail_disk(3)
        assert not arr.survives_failures

    def test_raid6_survives_two_not_three(self):
        env, arr = make(RAIDLevel.RAID6, 6)
        arr.fail_disk(0)
        arr.fail_disk(1)
        assert arr.survives_failures
        arr.fail_disk(2)
        assert not arr.survives_failures

    def test_raid10_pairwise(self):
        env, arr = make(RAIDLevel.RAID10, 4)
        arr.fail_disk(0)
        assert arr.survives_failures  # mirror 2 covers
        arr.fail_disk(2)  # same pair as 0 (0 % 2 == 2 % 2)
        assert not arr.survives_failures

    def test_bad_index(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        with pytest.raises(IndexError):
            arr.fail_disk(9)


class TestDegradedPerformance:
    def test_raid5_degraded_reads_slower(self):
        env1, healthy = make(RAIDLevel.RAID5, 5)
        env1.run(healthy.submit("read", 0, 1 * MiB, count=64))
        env2, degraded = make(RAIDLevel.RAID5, 5)
        degraded.fail_disk(0)
        env2.run(degraded.submit("read", 0, 1 * MiB, count=64))
        assert env2.now > 1.3 * env1.now  # reconstruction overhead

    def test_raid1_degraded_loses_read_parallelism(self):
        env1, healthy = make(RAIDLevel.RAID1, 2)
        env1.run(healthy.submit("read", 0, 1 * MiB, count=64))
        env2, degraded = make(RAIDLevel.RAID1, 2)
        degraded.fail_disk(1)
        env2.run(degraded.submit("read", 0, 1 * MiB, count=64))
        assert env2.now > 1.5 * env1.now

    def test_raid1_degraded_write_single_copy(self):
        env, arr = make(RAIDLevel.RAID1, 2)
        arr.fail_disk(0)
        env.run(arr.submit("write", 0, 1 * MiB))
        assert arr.disks[1].stats.bytes_written == 1 * MiB
        assert arr.disks[0].stats.bytes_written == 0

    def test_raid5_degraded_sparse_ops_still_complete(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(2)
        env.run(arr.submit("read", 0, 4 * KiB, count=50, stride=10 * MiB))
        env.run(arr.submit("write", 0, 4 * KiB, count=50, stride=10 * MiB))
        assert env.now > 0

    def test_degraded_write_back_flush_works(self):
        env, arr = make(RAIDLevel.RAID5, 5, write_back=True)
        arr.fail_disk(4)
        env.run(arr.submit("write", 0, 1 * MiB, count=8))
        env.run(arr.flush())
        assert arr.dirty_bytes == 0

    def test_failed_disks_reported(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(3)
        assert arr.failed_disks == frozenset({3})
