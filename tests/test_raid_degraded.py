"""Failure injection: degraded-mode RAID service, rebuilds and data loss."""

import pytest

from repro.simengine import Environment
from repro.hardware.raid import DataLossError, RAIDArray, RAIDConfig, RAIDLevel
from repro.storage.base import KiB, MiB
from conftest import SMALL_DISK


def make(level, ndisks, write_back=False, **cfg):
    env = Environment()
    return env, RAIDArray(env, RAIDConfig(level=level, ndisks=ndisks, disk=SMALL_DISK,
                                          write_back=write_back, **cfg))


class TestSurvival:
    def test_jbod_dies(self):
        env, arr = make(RAIDLevel.JBOD, 1)
        arr.fail_disk(0)
        assert not arr.survives_failures
        with pytest.raises(RuntimeError, match="lost data"):
            arr.submit("read", 0, 4 * KiB)

    def test_raid0_dies(self):
        env, arr = make(RAIDLevel.RAID0, 4)
        arr.fail_disk(2)
        assert not arr.survives_failures

    def test_raid1_survives_one(self):
        env, arr = make(RAIDLevel.RAID1, 2)
        arr.fail_disk(0)
        assert arr.survives_failures
        assert arr.degraded
        env.run(arr.submit("read", 0, 1 * MiB))

    def test_raid1_dies_when_all_mirrors_fail(self):
        env, arr = make(RAIDLevel.RAID1, 2)
        arr.fail_disk(0)
        arr.fail_disk(1)
        assert not arr.survives_failures

    def test_raid5_survives_one_not_two(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(1)
        assert arr.survives_failures
        arr.fail_disk(3)
        assert not arr.survives_failures

    def test_raid6_survives_two_not_three(self):
        env, arr = make(RAIDLevel.RAID6, 6)
        arr.fail_disk(0)
        arr.fail_disk(1)
        assert arr.survives_failures
        arr.fail_disk(2)
        assert not arr.survives_failures

    def test_raid10_pairwise(self):
        env, arr = make(RAIDLevel.RAID10, 4)
        arr.fail_disk(0)
        assert arr.survives_failures  # mirror 2 covers
        arr.fail_disk(2)  # same pair as 0 (0 % 2 == 2 % 2)
        assert not arr.survives_failures

    def test_bad_index(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        with pytest.raises(IndexError):
            arr.fail_disk(9)


class TestDegradedPerformance:
    def test_raid5_degraded_reads_slower(self):
        env1, healthy = make(RAIDLevel.RAID5, 5)
        env1.run(healthy.submit("read", 0, 1 * MiB, count=64))
        env2, degraded = make(RAIDLevel.RAID5, 5)
        degraded.fail_disk(0)
        env2.run(degraded.submit("read", 0, 1 * MiB, count=64))
        assert env2.now > 1.3 * env1.now  # reconstruction overhead

    def test_raid1_degraded_loses_read_parallelism(self):
        env1, healthy = make(RAIDLevel.RAID1, 2)
        env1.run(healthy.submit("read", 0, 1 * MiB, count=64))
        env2, degraded = make(RAIDLevel.RAID1, 2)
        degraded.fail_disk(1)
        env2.run(degraded.submit("read", 0, 1 * MiB, count=64))
        assert env2.now > 1.5 * env1.now

    def test_raid1_degraded_write_single_copy(self):
        env, arr = make(RAIDLevel.RAID1, 2)
        arr.fail_disk(0)
        env.run(arr.submit("write", 0, 1 * MiB))
        assert arr.disks[1].stats.bytes_written == 1 * MiB
        assert arr.disks[0].stats.bytes_written == 0

    def test_raid5_degraded_sparse_ops_still_complete(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(2)
        env.run(arr.submit("read", 0, 4 * KiB, count=50, stride=10 * MiB))
        env.run(arr.submit("write", 0, 4 * KiB, count=50, stride=10 * MiB))
        assert env.now > 0

    def test_degraded_write_back_flush_works(self):
        env, arr = make(RAIDLevel.RAID5, 5, write_back=True)
        arr.fail_disk(4)
        env.run(arr.submit("write", 0, 1 * MiB, count=8))
        env.run(arr.flush())
        assert arr.dirty_bytes == 0

    def test_failed_disks_reported(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(3)
        assert arr.failed_disks == frozenset({3})

class TestRebuild:
    def test_raid5_rebuild_completes_and_repairs(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(1)
        ev = arr.start_rebuild(1, rebuild_bytes=16 * MiB)
        env.run(ev)
        assert ev.value == "rebuilt"
        assert not arr.degraded and not arr.rebuilding
        assert arr.rebuild_stats.completed == 1
        # parity reconstruction reads the extent from all 4 survivors
        assert arr.rebuild_stats.bytes_read == 4 * 16 * MiB
        assert arr.rebuild_stats.bytes_written == 16 * MiB

    def test_raid10_rebuild_copies_one_mirror(self):
        env, arr = make(RAIDLevel.RAID10, 4)
        arr.fail_disk(0)
        ev = arr.start_rebuild(0, rebuild_bytes=16 * MiB)
        env.run(ev)
        assert ev.value == "rebuilt"
        # mirror copy: one spindle read, not a whole-array sweep
        assert arr.rebuild_stats.bytes_read == 16 * MiB

    def test_rebuild_rate_cap_paces_the_copy(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(0)
        env.run(arr.start_rebuild(0, rebuild_bytes=32 * MiB, rate_Bps=16 * MiB))
        assert env.now >= 2.0  # 32 MiB at <= 16 MiB/s

    def test_second_failure_aborts_rebuild(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        arr.fail_disk(0)
        ev = arr.start_rebuild(0, rebuild_bytes=64 * MiB)

        def second_failure():
            yield env.timeout(0.01)
            arr.fail_disk(2)

        env.process(second_failure())
        env.run(ev)
        assert ev.value == "data-loss"
        assert arr.rebuild_stats.aborted == 1
        assert arr.data_lost
        with pytest.raises(DataLossError):
            arr.submit("read", 0, 4 * KiB)

    def test_start_rebuild_validates_state(self):
        env, arr = make(RAIDLevel.RAID5, 5)
        with pytest.raises(ValueError, match="has not failed"):
            arr.start_rebuild(0)
        arr.fail_disk(0)
        arr.start_rebuild(0, rebuild_bytes=4 * MiB)
        with pytest.raises(ValueError, match="already rebuilding"):
            arr.start_rebuild(0)


class TestFailDiskInFlight:
    """fail_disk with write-back requests in flight must never strand a
    held resource request (the ISSUE's regression case)."""

    def test_unsurvivable_failure_wakes_blocked_writer(self):
        env, arr = make(RAIDLevel.RAID0, 2, write_back=True,
                        cache_bytes=1 * MiB)
        done = arr.submit("write", 0, 4 * MiB)  # larger than the cache

        def failure():
            yield env.timeout(1e-4)
            arr.fail_disk(1)

        env.process(failure())
        with pytest.raises(DataLossError, match="lost data"):
            env.run(done)

    def test_unsurvivable_failure_fires_flush_event(self):
        env, arr = make(RAIDLevel.RAID0, 2, write_back=True)
        env.run(arr.submit("write", 0, 2 * MiB, count=4))
        arr.fail_disk(0)
        env.run(arr.flush())  # must fire, not hang on dropped dirty data
        assert arr.dirty_bytes == 0
        with pytest.raises(DataLossError):
            arr.submit("read", 0, 4 * KiB)

    def test_survivable_failure_flusher_continues_degraded(self):
        env, arr = make(RAIDLevel.RAID5, 5, write_back=True)
        done = arr.submit("write", 0, 2 * MiB, count=4)

        def failure():  # hits while the flusher is mid-drain
            yield env.timeout(1e-4)
            arr.fail_disk(3)

        env.process(failure())
        env.run(done)
        env.run(arr.flush())
        assert arr.dirty_bytes == 0
        assert arr.degraded and arr.survives_failures
