"""CLI tests (fast paths only; heavy runs are exercised in benchmarks/)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "jbod" in out and "raid5" in out and "cluster-a" in out
    assert "btio" in out and "madbench" in out


def test_parser_defaults():
    args = build_parser().parse_args(["evaluate", "btio"])
    assert args.workload == "btio"
    assert args.nprocs == 16
    assert args.subtype == "full"
    assert set(args.configs) == {"jbod", "raid1", "raid5"}


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "--configs", "bluegene"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_characterize_writes_csv(tmp_path, capsys):
    rc = main([
        "characterize", "--configs", "jbod", "--block-step", "9",
        "--ior-gib", "1", "--out", str(tmp_path),
    ])
    assert rc == 0
    saved = sorted(p.name for p in tmp_path.glob("*.csv"))
    assert saved == ["jbod_iolib.csv", "jbod_localfs.csv", "jbod_nfs.csv"]
    out = capsys.readouterr().out
    assert "Performance table" in out


def test_predict_command(capsys):
    rc = main([
        "predict", "btio", "--class", "S", "--nprocs", "4",
        "--configs", "jbod", "--block-step", "9", "--ior-gib", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "predicted I/O time" in out
    assert "jbod" in out


SPEC_YAML = """\
version: 1
name: cli-demo
nprocs: 2
phases:
  - op: write
    nbytes: 64KiB
    count: 4
"""


def test_workload_source_is_exclusive():
    # a named workload and a spec file at once is ambiguous
    with pytest.raises(SystemExit):
        main(["evaluate", "btio", "--workload", "spec.yaml",
              "--configs", "jbod", "--block-step", "9"])
    # and no workload at all is an error too
    with pytest.raises(SystemExit):
        main(["evaluate", "--configs", "jbod", "--block-step", "9"])


def test_workload_validate(tmp_path, capsys):
    good = tmp_path / "good.yaml"
    good.write_text(SPEC_YAML)
    foreign = tmp_path / "faults.json"
    foreign.write_text('{"faults": []}')
    bad = tmp_path / "bad.yaml"
    bad.write_text("version: 1\nphases:\n  - op: append\n    nbytes: 4096\n")

    assert main(["workload", "validate", str(good)]) == 0
    out = capsys.readouterr().out
    assert "ok (1 phase(s)" in out and "fingerprint=" in out

    assert main(["workload", "validate", "--skip-foreign",
                 str(good), str(foreign)]) == 0
    out = capsys.readouterr().out
    assert "skipped (not a workload spec)" in out

    assert main(["workload", "validate", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "INVALID" in out and "phases[0].op" in out


def test_workload_compile(tmp_path, capsys):
    f = tmp_path / "demo.yaml"
    f.write_text(SPEC_YAML)
    assert main(["workload", "compile", str(f)]) == 0
    out = capsys.readouterr().out
    assert "workload 'cli-demo'" in out
    assert "fingerprint:" in out
    assert "write" in out

    assert main(["workload", "compile", "--json", str(f)]) == 0
    out = capsys.readouterr().out
    assert '"SyntheticSpec"' in out


def test_evaluate_spec_workload(tmp_path, capsys):
    f = tmp_path / "demo.yaml"
    f.write_text(SPEC_YAML)
    rc = main(["evaluate", "--workload", str(f), "--configs", "jbod",
               "--block-step", "9", "--ior-gib", "1"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "jbod" in captured.out
    assert "evaluating cli-demo [workload " in captured.err


def test_evaluate_missing_spec_fails_cleanly():
    with pytest.raises(SystemExit, match="cannot load workload spec"):
        main(["evaluate", "--workload", "/does/not/exist.yaml",
              "--configs", "jbod", "--block-step", "9", "--ior-gib", "1"])
