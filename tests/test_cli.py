"""CLI tests (fast paths only; heavy runs are exercised in benchmarks/)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "jbod" in out and "raid5" in out and "cluster-a" in out
    assert "btio" in out and "madbench" in out


def test_parser_defaults():
    args = build_parser().parse_args(["evaluate", "btio"])
    assert args.workload == "btio"
    assert args.nprocs == 16
    assert args.subtype == "full"
    assert set(args.configs) == {"jbod", "raid1", "raid5"}


def test_unknown_config_rejected():
    with pytest.raises(SystemExit):
        main(["characterize", "--configs", "bluegene"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_characterize_writes_csv(tmp_path, capsys):
    rc = main([
        "characterize", "--configs", "jbod", "--block-step", "9",
        "--ior-gib", "1", "--out", str(tmp_path),
    ])
    assert rc == 0
    saved = sorted(p.name for p in tmp_path.glob("*.csv"))
    assert saved == ["jbod_iolib.csv", "jbod_localfs.csv", "jbod_nfs.csv"]
    out = capsys.readouterr().out
    assert "Performance table" in out


def test_predict_command(capsys):
    rc = main([
        "predict", "btio", "--class", "S", "--nprocs", "4",
        "--configs", "jbod", "--block-step", "9", "--ior-gib", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "predicted I/O time" in out
    assert "jbod" in out
