"""Report-renderer tests."""

from repro.core.characterize import AppMeasure, AppProfile
from repro.core.evaluation import EvaluationReport, generate_used_percentage
from repro.core.perftable import PerfRow, PerformanceTable
from repro.core.report import (
    format_characterization,
    format_perf_table,
    format_run_metrics,
    format_used_matrix,
    format_used_table,
)
from repro.storage.base import AccessMode, AccessType, MiB


def make_table():
    t = PerformanceTable("nfs")
    t.add(PerfRow("write", 1 * MiB, AccessType.GLOBAL, AccessMode.SEQUENTIAL, 100 * MiB))
    t.add(PerfRow("read", 64 * 1024, AccessType.GLOBAL, AccessMode.STRIDED, 25 * MiB))
    return t


def make_report(name="cfg"):
    prof = AppProfile(nprocs=2)
    prof.measures.append(
        AppMeasure("write", 1 * MiB, AccessMode.SEQUENTIAL, AccessType.GLOBAL, 10, 10 * MiB, 0.2)
    )
    used = generate_used_percentage(name, prof, {"nfs": make_table()})
    return EvaluationReport(name, 100.0, 20.0, 10 * MiB, 0, used, prof)


def test_perf_table_renders_rows_and_units():
    text = format_perf_table(make_table())
    assert "level: nfs" in text
    assert "write" in text and "read" in text
    assert "1M" in text and "64K" in text
    assert "100.0" in text  # MB/s column


def test_used_table_shows_percentages():
    rep = make_report()
    text = format_used_table(rep.used, levels=("nfs",))
    assert "cfg" in text
    assert "%" in text
    assert "write" in text


def test_used_matrix_one_row_per_config():
    reports = {"jbod": make_report("jbod"), "raid5": make_report("raid5")}
    text = format_used_matrix(reports, "write", levels=("nfs",))
    assert "jbod" in text and "raid5" in text
    assert "WRITE OPERATIONS" in text


def test_used_matrix_missing_level_dash():
    reports = {"jbod": make_report("jbod")}
    text = format_used_matrix(reports, "write", levels=("iolib",))
    assert "-" in text


def test_characterization_formatting_humanizes_blocks():
    text = format_characterization(
        {"numio_write": 640, "block_bytes_write": [10 * MiB]}, "TABLE II"
    )
    assert "TABLE II" in text
    assert "640" in text
    assert "10M" in text


def test_run_metrics_columns():
    text = format_run_metrics({"cfg": make_report()})
    assert "exec (s)" in text
    assert "100.0" in text
    assert "20.0" in text
