"""MPI-IO tests: opens, independent vs collective, two-phase, hints."""

import pytest

from repro.mpi.io import IOHints
from repro.simengine import Environment
from repro.storage.base import KiB, MiB
from repro.clusters.builder import build_system
from repro.tracing import IOTracer
from conftest import small_config


def make_world(nprocs=4, n_compute=2, io_hints=None, tracer=None):
    system = build_system(Environment(), small_config(n_compute=n_compute))
    return system, system.world(nprocs, io_hints=io_hints, tracer=tracer)


class TestOpen:
    def test_collective_open_shares_inode_on_nfs(self):
        system, w = make_world(4)
        inodes = {}

        def prog(mpi):
            f = yield mpi.file_open("/nfs/shared.dat", "w")
            inodes[mpi.rank] = f.inode
            yield f.close()

        system.env.run(w.run_program(prog))
        assert len({id(i) for i in inodes.values()}) == 1

    def test_collective_open_local_creates_per_node_files(self):
        system, w = make_world(4, n_compute=2)
        inodes = {}

        def prog(mpi):
            f = yield mpi.file_open("/local/out.dat", "w")
            inodes[mpi.rank] = f.inode
            yield f.close()

        system.env.run(w.run_program(prog))
        # ranks on the same node share; across nodes they differ
        assert inodes[0] is inodes[1]
        assert inodes[0] is not inodes[2]

    def test_open_self_unique_files(self):
        system, w = make_world(2)

        def prog(mpi):
            f = yield mpi.file_open_self(f"/nfs/u{mpi.rank}.dat", "w")
            yield f.write_at(0, 64 * KiB)
            yield f.close_self()

        system.env.run(w.run_program(prog))
        assert system.export.exists("/nfs/u0.dat")
        assert system.export.exists("/nfs/u1.dat")

    def test_read_mode_keeps_existing_data(self):
        system, w = make_world(2)
        sizes = {}

        def writer(mpi):
            f = yield mpi.file_open("/nfs/data.dat", "w")
            yield f.write_at(0, 1 * MiB)
            yield f.close()

        def reader(mpi):
            f = yield mpi.file_open("/nfs/data.dat", "r")
            sizes[mpi.rank] = f.size
            yield f.close()

        system.env.run(w.run_program(writer))
        w2 = system.world(2)
        system.env.run(w2.run_program(reader))
        assert sizes[0] == 1 * MiB


class TestIndependent:
    def test_write_then_read_roundtrip(self):
        system, w = make_world(2)
        got = {}

        def prog(mpi):
            f = yield mpi.file_open("/nfs/i.dat", "w")
            n = yield f.write_at(mpi.rank * MiB, 1 * MiB)
            got[("w", mpi.rank)] = n
            yield mpi.barrier()
            n = yield f.read_at(mpi.rank * MiB, 1 * MiB)
            got[("r", mpi.rank)] = n
            yield f.close()

        system.env.run(w.run_program(prog))
        assert got[("w", 0)] == MiB and got[("r", 1)] == MiB

    def test_sparse_independent_slower_than_dense(self):
        def run_one(sparse):
            system, w = make_world(2)

            def prog(mpi):
                f = yield mpi.file_open("/nfs/i.dat", "w")
                if sparse:
                    yield f.write_at(0, 2 * KiB, count=512, stride=8 * KiB)
                else:
                    yield f.write_at(0, 1 * MiB)
                yield f.close()

            system.env.run(w.run_program(prog))
            return system.env.now

        assert run_one(sparse=True) > 3 * run_one(sparse=False)


class TestCollective:
    def test_write_at_all_produces_large_server_ops(self):
        tracer = IOTracer()
        system, w = make_world(4, tracer=tracer)

        def prog(mpi):
            f = yield mpi.file_open("/nfs/c.dat", "w")
            yield f.write_at_all(mpi.rank * MiB, 1 * MiB)
            yield f.close()

        system.env.run(w.run_program(prog))
        assert system.export.stat("/nfs/c.dat").size == 4 * MiB
        evs = [e for e in tracer.events if e.op == "write"]
        assert all(e.collective for e in evs)
        assert len(evs) == 4

    def test_collective_faster_than_independent_for_small_strided(self):
        def run_one(collective):
            system, w = make_world(4)

            def prog(mpi):
                f = yield mpi.file_open("/nfs/c.dat", "w")
                if collective:
                    yield f.write_at_all(mpi.rank * 256 * KiB, 2 * KiB, count=128, stride=2 * KiB)
                else:
                    yield f.write_at(mpi.rank * 256 * KiB, 2 * KiB, count=128, stride=4 * KiB)
                yield f.close()

            system.env.run(w.run_program(prog))
            return system.env.now

        assert run_one(True) < run_one(False)

    def test_collective_disabled_hint_falls_back_to_independent(self):
        tracer = IOTracer()
        system, w = make_world(2, io_hints={"collective": False}, tracer=tracer)

        def prog(mpi):
            f = yield mpi.file_open("/nfs/c.dat", "w")
            yield f.write_at_all(mpi.rank * MiB, 1 * MiB)
            yield f.close()

        system.env.run(w.run_program(prog))
        assert all(not e.collective for e in tracer.events if e.op == "write")

    def test_cb_nodes_hint_limits_aggregators(self):
        system, w = make_world(4, n_compute=2, io_hints={"cb_nodes": 1})

        def prog(mpi):
            f = yield mpi.file_open("/nfs/c.dat", "w")
            yield f.write_at_all(mpi.rank * MiB, 1 * MiB)
            yield f.close()

        system.env.run(w.run_program(prog))
        assert system.export.stat("/nfs/c.dat").size == 4 * MiB

    def test_read_at_all(self):
        system, w = make_world(4)

        def prog(mpi):
            f = yield mpi.file_open("/nfs/c.dat", "w")
            yield f.write_at_all(mpi.rank * MiB, 1 * MiB)
            yield mpi.barrier()
            n = yield f.read_at_all(mpi.rank * MiB, 1 * MiB)
            yield f.close()
            return n

        values = system.env.run(w.run_program(prog))
        assert values == [MiB] * 4


class TestDataSieving:
    def test_ds_read_hint_reduces_time_for_dense_enough_pattern(self):
        def run_one(ds):
            hints = {"ds_read": ds}
            system, w = make_world(2, io_hints=hints)

            def prog(mpi):
                f = yield mpi.file_open("/nfs/s.dat", "w")
                yield f.write_at(0, 4 * MiB)
                yield mpi.barrier()
                yield f.read_at(0, 2 * KiB, count=256, stride=8 * KiB)
                yield f.close()

            system.env.run(w.run_program(prog))
            return system.env.now

        assert run_one(True) < run_one(False)


class TestTracing:
    def test_events_carry_geometry(self):
        tracer = IOTracer()
        system, w = make_world(2, tracer=tracer)

        def prog(mpi):
            f = yield mpi.file_open("/nfs/t.dat", "w")
            yield f.write_at(0, 64 * KiB, count=4, stride=128 * KiB)
            yield f.close()

        system.env.run(w.run_program(prog))
        ev = tracer.events[0]
        assert ev.nbytes == 64 * KiB
        assert ev.count == 4
        assert ev.stride == 128 * KiB
        assert ev.duration > 0
        assert ev.path == "/nfs/t.dat"


class TestCommSelfCollectives:
    def test_collective_on_self_file_degenerates_to_independent(self):
        """Collectives on a COMM_SELF file are collective over exactly
        one rank — they must complete without rendezvousing on the
        world (per-rank paths never gather all ranks, so a world
        rendezvous would deadlock the calendar)."""
        system, w = make_world(4)

        def prog(mpi):
            f = yield mpi.file_open_self(f"/nfs/self{mpi.rank}.dat", "w")
            yield f.write_at_all(0, 256 * KiB)
            yield f.read_at_all(0, 128 * KiB)
            yield f.close()  # plain close on a self file must not hang either

        system.env.run(w.run_program(prog))
        for r in range(4):
            assert system.export.exists(f"/nfs/self{r}.dat")

    def test_self_file_matches_explicit_independent_io(self):
        """The degenerate collective takes exactly the independent
        path: simulated times are identical."""

        def run(use_collective):
            system, w = make_world(2)

            def prog(mpi):
                f = yield mpi.file_open_self(f"/nfs/x{mpi.rank}.dat", "w")
                if use_collective:
                    yield f.write_at_all(0, 512 * KiB)
                else:
                    yield f.write_at(0, 512 * KiB)
                yield f.close_self()

            system.env.run(w.run_program(prog))
            return system.env.now

        assert run(True) == run(False)
