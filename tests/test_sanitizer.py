"""Runtime sim-sanitizer: injected violations are caught, clean runs stay
clean and byte-identical to unsanitized ones."""

import heapq

import pytest

from repro.analysis.sanitizer import SanitizerError, SimSanitizer, sanitize_enabled
from repro.simengine.core import Environment, Event, SimulationError

from conftest import run_proc


@pytest.fixture
def sanitized(system):
    san = SimSanitizer(system).attach()
    yield system, san
    san.detach()


def checks_of(san):
    return [v.check for v in san.violations]


# ---------------------------------------------------------------------------
# attach / detach


def test_attach_intercepts_and_detach_restores(system):
    env = system.env
    san = SimSanitizer(system).attach()
    assert env.sanitizer is san
    assert env.step.__func__ is not Environment.step
    with pytest.raises(SanitizerError):
        SimSanitizer(system).attach()
    san.detach()
    assert env.sanitizer is None
    assert env.step.__func__ is Environment.step


def test_clean_system_run_reports_clean(sanitized):
    system, san = sanitized
    env = system.env

    def ping():
        yield env.timeout(0.5)
        yield env.timeout(0.5)

    run_proc(env, ping())
    report = san.finish()
    assert san.clean
    assert report["violations"] == []
    assert report["events_checked"] > 0
    assert "clean" in san.render()


# ---------------------------------------------------------------------------
# calendar invariants


def _advance(env, dt=1.0):
    def wait():
        yield env.timeout(dt)

    run_proc(env, wait())


def test_monotonicity_violation_detected(sanitized):
    system, san = sanitized
    env = system.env
    _advance(env, 1.0)
    assert env.now == 1.0
    # smuggle an event scheduled in the past straight onto the heap
    heapq.heappush(env._queue, (0.25, 1, 0, Event(env)))
    with pytest.raises(SimulationError):
        env.step()
    assert checks_of(san) == ["monotonicity"]


def test_tie_break_violation_detected_on_corrupt_heap(sanitized):
    system, san = sanitized
    env = system.env
    env.run()  # drain the builder's initialization events
    heapq.heappush(env._queue, (1.0, 1, 7, Event(env)))
    env.step()
    # re-insert the already-popped key behind the scheduling API: no
    # _seq bump, so the gate stays armed and the repeat key must flag
    env._queue.append((1.0, 1, 7, Event(env)))
    env.step()
    assert checks_of(san) == ["tie-break"]


def test_same_time_insert_during_callback_is_legitimate(sanitized):
    """A callback scheduling an earlier-sorting same-timestamp event is
    normal DES behaviour, not a tie-break violation."""
    system, san = sanitized
    env = system.env

    def proc():
        yield env.timeout(1.0)
        # waking this event inserts key (1.0, 0, seq) — sorting before
        # the (1.0, 1, ...) timeout that is resuming us right now
        env.event().succeed(priority=0)
        yield env.timeout(0.5)

    run_proc(env, proc())
    san.finish()
    assert san.clean


# ---------------------------------------------------------------------------
# resource misuse (raises at the offending call)


def test_double_release_raises_and_records(sanitized):
    system, san = sanitized
    head = system.server_node.array.disks[0].head
    req = head.request()
    head.release(req)
    with pytest.raises(SanitizerError, match="double release"):
        head.release(req)
    assert checks_of(san) == ["resource"]


def test_release_of_queued_never_granted_raises(sanitized):
    system, san = sanitized
    head = system.server_node.array.disks[0].head
    held = [head.request() for _ in range(head.capacity)]
    queued = head.request()
    assert queued in head.queue
    with pytest.raises(SanitizerError, match="never granted"):
        head.release(queued)
    assert checks_of(san) == ["resource"]
    for req in held:
        head.release(req)


def test_misuse_without_sanitizer_still_raises_plain_error(system):
    head = system.server_node.array.disks[0].head
    req = head.request()
    head.release(req)
    with pytest.raises(SimulationError):
        head.release(req)


# ---------------------------------------------------------------------------
# leaks


def test_leaked_slot_detected_at_finish(sanitized):
    system, san = sanitized
    head = system.server_node.array.disks[0].head
    req = head.request()
    system.env.run()  # drain init + grant events: the calendar is empty
    report = san.finish()
    assert "leak" in checks_of(san)
    assert any("still held" in v["message"] for v in report["violations"])
    head.release(req)


def test_leak_check_skipped_while_calendar_busy(sanitized):
    """An in-flight process legitimately holds slots mid-run."""
    system, san = sanitized
    env = system.env
    head = system.server_node.array.disks[0].head
    req = head.request()
    env.timeout(1.0)  # pending event: the calendar is not drained
    san.check_leaks()
    assert san.clean
    head.release(req)


def test_leak_detected_on_reset(sanitized):
    system, san = sanitized
    head = system.server_node.array.disks[0].head
    head.request()
    system.env.run()  # drain init + grant events: the calendar is empty
    system.env.reset()
    assert "leak" in checks_of(san)
    # reset rebaselines the ledgers for the next run on the pooled system
    assert san.iolib_bytes == {"write": 0, "read": 0}


# ---------------------------------------------------------------------------
# utilization and byte conservation


def test_overcounted_busy_time_detected(sanitized):
    system, san = sanitized
    disk = system.server_node.array.disks[0]
    disk.stats.busy_s += 5.0  # busier than any elapsed interval
    san.check_utilization()
    assert checks_of(san) == ["utilization"]


def test_conservation_imbalance_detected(sanitized):
    system, san = sanitized
    san.account_iolib("write", 4096)  # no filesystem ever sees the bytes
    san.check_conservation()
    assert checks_of(san) == ["conservation"]
    assert "4096" in san.violations[0].message


def test_conservation_balances_with_corrections(sanitized):
    system, san = sanitized
    mount = next(iter(system.nfs_mounts.values()))
    san.account_iolib("write", 1000)
    san.note_gap("write", 100)       # collective domains skip a 100 B hole
    san.account_fs(mount, "write", 900)
    san.account_iolib("read", 512)
    san.note_overfetch("read", 512)  # sieving fetches a full block
    san.account_fs(mount, "read", 1024)
    san.check_conservation()
    assert san.clean


def test_non_boundary_filesystem_traffic_not_counted(sanitized):
    """Server-export absorption is behind the compute-side mounts; its
    bytes must not double-count."""
    system, san = sanitized
    san.account_fs(system.export, "write", 777)
    assert san.fs_bytes["write"] == 0


def test_conservation_corrections_on_real_mpi_io():
    """Overlapping collectives (domain union < requested bytes) and
    data-sieving reads (fetched span > requested bytes) both reshape
    the byte flow; the gap/overfetch corrections must balance them."""
    from conftest import small_config
    from repro.clusters.builder import build_system
    from repro.storage.base import KiB

    system = build_system(Environment(), small_config())
    san = SimSanitizer(system).attach()
    world = system.world(4, io_hints={"ds_read": True})

    def prog(mpi):
        f = yield mpi.file_open("/nfs/c.dat", "w")
        # every rank writes the SAME 256 KiB region: the domain union
        # covers 256 KiB of the 1 MiB requested -> 768 KiB write gap
        yield f.write_at_all(0, 256 * KiB)
        yield mpi.barrier()
        # sparse strided read: 8 x 4 KiB pieces every 16 KiB is dense
        # enough to sieve -> each rank fetches the 116 KiB span
        yield f.read_at(0, 4 * KiB, count=8, stride=16 * KiB)
        yield f.close()

    system.env.run(world.run_program(prog))
    san.finish()
    san.detach()
    assert san.clean, [v.render() for v in san.violations]
    assert san.gap_bytes["write"] == 3 * 256 * KiB
    span = 7 * 16 * KiB + 4 * KiB
    assert san.overfetch_bytes["read"] == 4 * (span - 8 * 4 * KiB)
    assert san.fs_bytes["write"] == 256 * KiB
    assert san.fs_bytes["read"] == 4 * span


# ---------------------------------------------------------------------------
# end-to-end: sanitized evaluation is clean and byte-identical


def test_sanitize_enabled_env_var(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitize_enabled()


def test_btio_evaluation_sanitized_clean_and_identical():
    """Acceptance: a full BT-IO evaluation under ``--sanitize`` reports
    zero violations and produces byte-identical used tables, verdicts
    and execution time versus the unsanitized run."""
    from repro.clusters import aohyper_config
    from repro.core.evaluation import used_tables_equal
    from repro.core.methodology import Methodology
    from repro.storage.base import KiB, MiB
    from repro.workloads.apps import BTIOApplication
    from repro.workloads.btio import BTIOConfig

    m = Methodology(
        {"jbod": aohyper_config("jbod")},
        block_sizes=(256 * KiB, 1 * MiB),
        char_file_bytes=8 * MiB,
        ior_file_bytes=64 * MiB,
    )
    m.characterize(n_jobs=1)
    app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full"))
    plain = m.evaluate(app, n_jobs=1, sanitize=False)
    sanitized = m.evaluate(app, n_jobs=1, sanitize=True)

    assert plain["jbod"].sanitizer is None
    report = sanitized["jbod"].sanitizer
    assert report["enabled"]
    assert report["violations"] == []
    assert report["events_checked"] > 0
    # the MPI-IO / filesystem byte ledgers balanced exactly
    counters = report["counters"]
    for op in ("write", "read"):
        assert counters["fs_bytes"][op] == (
            counters["iolib_bytes"][op]
            - counters["gap_bytes"][op]
            + counters["overfetch_bytes"][op]
        )
        assert counters["iolib_bytes"][op] > 0

    # observing the run must not change it
    assert used_tables_equal(plain["jbod"].used, sanitized["jbod"].used, rel_tol=0)
    assert sanitized["jbod"].execution_time_s == plain["jbod"].execution_time_s
    assert sanitized["jbod"].write_bottleneck() == plain["jbod"].write_bottleneck()
    assert sanitized["jbod"].read_bottleneck() == plain["jbod"].read_bottleneck()
