"""Phase-replay accelerator: correctness, escape hatches, edge cases.

The tentpole guarantee: evaluation with the phase fastpath produces
the same used-percentage tables and bottleneck levels as full replay,
because extrapolation only ever replaces occurrences whose timing was
verified steady (and falls back per phase otherwise).
"""

import os

import pytest

from repro.clusters import aohyper_config
from repro.clusters.builder import build_system, warm_system
from repro.core.replay import (
    PhaseReplayAccelerator,
    ReplaySettings,
    phase_fastpath_enabled,
)
from repro.simengine import Environment
from repro.tracing.events import IOEvent
from repro.tracing.phases import PhaseDetector
from repro.workloads.btio import BTIOConfig, run_btio
from repro.workloads.madbench import MadBenchConfig, run_madbench


def _run(app, cfg, config_name, enabled, exact=False):
    system = build_system(Environment(), aohyper_config(config_name))
    system.replay_settings = ReplaySettings(enabled=enabled, exact=exact)
    return app(system, cfg)


# ---------------------------------------------------------------------------
# fastpath vs full replay equivalence


@pytest.mark.parametrize("config_name", ["jbod", "raid1", "raid5"])
def test_btio_fastpath_matches_full_replay(config_name):
    full = _run(run_btio, BTIOConfig(clazz="W", nprocs=4, subtype="full"), config_name, False)
    fast = _run(run_btio, BTIOConfig(clazz="W", nprocs=4, subtype="full"), config_name, True)
    assert fast.replay.extrapolated > 0  # the fastpath actually engaged
    assert fast.io_time == pytest.approx(full.io_time, rel=1e-2)
    assert fast.write_time == pytest.approx(full.write_time, rel=1e-2)
    assert fast.read_time == pytest.approx(full.read_time, rel=1e-2)
    assert fast.execution_time == pytest.approx(full.execution_time, rel=5e-2)
    assert fast.bytes_written == full.bytes_written
    assert fast.bytes_read == full.bytes_read


@pytest.mark.parametrize("config_name", ["jbod", "raid1", "raid5"])
def test_madbench_fastpath_matches_full_replay(config_name):
    full = _run(run_madbench, MadBenchConfig(kpix=2, nprocs=4), config_name, False)
    fast = _run(run_madbench, MadBenchConfig(kpix=2, nprocs=4), config_name, True)
    assert fast.io_time == pytest.approx(full.io_time, rel=1e-2)
    assert fast.execution_time == pytest.approx(full.execution_time, rel=5e-2)
    for fn in full.functions:
        assert fast.functions[fn].bytes_written == full.functions[fn].bytes_written
        assert fast.functions[fn].bytes_read == full.functions[fn].bytes_read
        assert fast.functions[fn].write_s == pytest.approx(
            full.functions[fn].write_s, rel=2e-2
        )
        assert fast.functions[fn].read_s == pytest.approx(
            full.functions[fn].read_s, rel=2e-2
        )


def test_fastpath_used_tables_and_bottlenecks_identical():
    """The tentpole acceptance property at evaluation level."""
    from repro.core.evaluation import used_tables_equal
    from repro.core.methodology import Methodology
    from repro.storage.base import KiB, MiB
    from repro.workloads.apps import BTIOApplication

    configs = {n: aohyper_config(n) for n in ("jbod", "raid1", "raid5")}
    m = Methodology(
        configs,
        block_sizes=(256 * KiB, 1 * MiB),
        char_file_bytes=8 * MiB,
        ior_file_bytes=64 * MiB,
    )
    m.characterize(n_jobs=1)
    app = BTIOApplication(BTIOConfig(clazz="W", nprocs=4, subtype="full"))
    full = m.evaluate(app, n_jobs=1, phase_fastpath=False)
    fast = m.evaluate(app, n_jobs=1, phase_fastpath=True)
    warm = m.evaluate(app, n_jobs=1, phase_fastpath=True, warm_start=True)
    for name in configs:
        assert used_tables_equal(full[name].used, fast[name].used, rel_tol=1e-2)
        assert used_tables_equal(full[name].used, warm[name].used, rel_tol=1e-2)
        assert full[name].write_bottleneck() == fast[name].write_bottleneck()
        assert full[name].read_bottleneck() == fast[name].read_bottleneck()
        assert full[name].write_bottleneck() == warm[name].write_bottleneck()
        assert full[name].read_bottleneck() == warm[name].read_bottleneck()


def test_batch_api_matches_per_part_behaviour():
    """write_at_multi/read_at_multi (simple subtype) with and without
    the fastpath move the same bytes and agree on timing."""
    cfg = BTIOConfig(clazz="S", nprocs=4, subtype="simple")
    full = _run(run_btio, cfg, "jbod", False)
    fast = _run(run_btio, cfg, "jbod", True)
    assert fast.bytes_written == full.bytes_written
    assert fast.n_writes == full.n_writes
    assert fast.io_time == pytest.approx(full.io_time, rel=2e-2)


def test_warm_start_is_deterministic():
    """Two runs on a reset pooled system reproduce each other exactly."""
    cfg = aohyper_config("jbod")
    first = run_btio(warm_system(cfg), BTIOConfig(clazz="S", nprocs=4, subtype="full"))
    second = run_btio(warm_system(cfg), BTIOConfig(clazz="S", nprocs=4, subtype="full"))
    assert second.execution_time == first.execution_time
    assert second.io_time == first.io_time
    # and a warm system matches a freshly built one bit-for-bit
    fresh = run_btio(
        build_system(Environment(), cfg), BTIOConfig(clazz="S", nprocs=4, subtype="full")
    )
    assert second.execution_time == fresh.execution_time


# ---------------------------------------------------------------------------
# escape hatches


def test_no_phase_fastpath_env_disables_extrapolation(monkeypatch):
    monkeypatch.setenv("REPRO_NO_PHASE_FASTPATH", "1")
    assert not phase_fastpath_enabled()
    assert not ReplaySettings.from_env().enabled
    res = run_btio(
        build_system(Environment(), aohyper_config("jbod")),
        BTIOConfig(clazz="S", nprocs=4, subtype="full"),
    )
    assert res.replay.extrapolated == 0
    monkeypatch.delenv("REPRO_NO_PHASE_FASTPATH")
    assert phase_fastpath_enabled()


def test_exact_mode_only_extrapolates_bit_identical_phases():
    acc = PhaseReplayAccelerator(ReplaySettings(exact=True, warmup=2, confirm=2))
    key = ("k",)
    # wobbling within any tolerance but not bit-identical: never steady
    for d in (1.0, 1.0 + 1e-12, 1.0, 1.0 + 1e-12, 1.0, 1.0 + 1e-12, 1.0, 1.0 + 1e-12):
        assert acc.steady(key) is None
        acc.observe(key, d)
    assert acc.stats.extrapolated == 0
    # bit-identical: steady after warmup + confirm, locked exactly
    acc2 = PhaseReplayAccelerator(ReplaySettings(exact=True, warmup=2, confirm=2))
    for _ in range(3):
        assert acc2.steady(key) is None
        acc2.observe(key, 0.125)
    assert acc2.steady(key) == 0.125


def test_tolerance_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_PHASE_TOL", "0.25")
    assert ReplaySettings.from_env().rel_tol == 0.25


def test_fallback_after_max_warmup_and_revalidation_drift():
    s = ReplaySettings(warmup=2, max_warmup=4, confirm=1, recheck=2, rel_tol=1e-3)
    acc = PhaseReplayAccelerator(s)
    key = ("drift",)
    # never agrees: falls back at max_warmup
    for d in (1.0, 1.3, 1.6, 1.9, 2.2, 2.5):
        assert acc.steady(key) is None
        acc.observe(key, d)
    assert acc.stats.fallback_phases == 1
    assert acc.stats.extrapolated == 0
    # steady then drifts: revalidation catches it and falls back
    acc2 = PhaseReplayAccelerator(s)
    key2 = ("ok-then-drift",)
    assert acc2.steady(key2) is None
    acc2.observe(key2, 1.0)
    assert acc2.steady(key2) is None
    acc2.observe(key2, 1.0)  # warmup met, pair agrees: locked
    assert acc2.steady(key2) == pytest.approx(1.0)
    assert acc2.steady(key2) == pytest.approx(1.0)
    assert acc2.steady(key2) is None  # recheck round
    acc2.observe(key2, 5.0)  # drifted: permanent fallback
    assert acc2.steady(key2) is None
    acc2.observe(key2, 5.0)
    assert acc2.steady(key2) is None
    assert acc2.stats.fallback_phases == 1


def test_group_rounds_are_all_or_nothing():
    """Sibling phases extrapolate per frozen round verdicts: one
    unsteady member keeps the whole group simulating."""
    s = ReplaySettings(warmup=2, max_warmup=8, confirm=1, recheck=100)
    acc = PhaseReplayAccelerator(s)
    grp = ("g",)
    a, b = ("a",), ("b",)
    # a converges immediately, b never does
    for i in range(6):
        assert acc.steady(a, grp) is None
        acc.observe(a, 1.0, grp)
        assert acc.steady(b, grp) is None
        acc.observe(b, 1.0 + i, grp)
    assert acc.stats.extrapolated == 0
    # once b falls back the group is poisoned for good
    assert acc.steady(a, grp) is None


def test_scope_couples_concurrent_groups():
    """Groups in one scope (same barrier epoch) extrapolate only when
    all of them are steady — the MADbench W read/write interleave."""
    s = ReplaySettings(warmup=2, max_warmup=8, confirm=1, recheck=100)
    acc = PhaseReplayAccelerator(s)
    scope = ("io", 1)
    gw, gr = ("w",), ("r",)
    kw, kr = ("kw",), ("kr",)
    for i in range(4):
        assert acc.steady(kw, gw, scope) is None
        acc.observe(kw, 1.0, gw, scope)
        assert acc.steady(kr, gr, scope) is None
        acc.observe(kr, 2.0 + i, gr, scope)  # reads never steady
    # writes are steady on their own, but the scope blocks them
    assert acc.steady(kw, gw, scope) is None
    # an isolated steady group in another scope extrapolates fine
    k2, g2 = ("k2",), ("g2",)
    for _ in range(3):
        acc.observe(k2, 1.0, g2, ("io", 2))
    assert acc.steady(k2, g2, ("io", 2)) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# PhaseDetector edge cases


def _ev(rank, op, nbytes, t0, t1, path="/f", count=1, stride=None):
    return IOEvent(rank, op, 0, nbytes, count, stride, t0, t1, path)


def test_detector_finite_gap_tolerance_splits_occurrences():
    events = [
        _ev(0, "write", 4096, 0.0, 0.1),
        _ev(0, "write", 4096, 0.2, 0.3),  # gap 0.1 <= tol: same occurrence
        _ev(0, "write", 4096, 5.0, 5.1),  # gap 4.7 > tol: new occurrence
    ]
    merged = PhaseDetector().detect(events)
    assert len(merged) == 1 and merged[0].occurrences == 1
    split = PhaseDetector(gap_tolerance_s=1.0).detect(events)
    assert len(split) == 1 and split[0].occurrences == 2
    spans = PhaseDetector(gap_tolerance_s=1.0).occurrence_spans(events)
    (sig, sp), = spans.items()
    assert sp == [(0.0, 0.3), (5.0, 5.1)]


def test_detector_interleaved_multi_rank_streams():
    """Interleaved ranks do not split each other's occurrences."""
    events = [
        _ev(0, "write", 4096, 0.0, 0.1),
        _ev(1, "write", 4096, 0.05, 0.15),
        _ev(0, "write", 4096, 0.1, 0.2),
        _ev(1, "write", 4096, 0.15, 0.25),
    ]
    phases = PhaseDetector().detect(events)
    assert len(phases) == 1
    assert phases[0].ranks == 2
    # per-rank streams each form one contiguous occurrence
    spans = PhaseDetector(gap_tolerance_s=0.5).occurrence_spans(events)
    (sig, sp), = spans.items()
    assert len(sp) == 2  # one occurrence per rank
    assert sp == sorted(sp)


def test_detector_single_occurrence_phase():
    events = [_ev(0, "read", 1 << 20, 1.0, 2.0)]
    phases = PhaseDetector().detect(events)
    assert len(phases) == 1
    assert phases[0].occurrences == 1
    spans = PhaseDetector().occurrence_spans(events)
    assert list(spans.values()) == [[(1.0, 2.0)]]


def test_detector_signature_change_starts_new_occurrence():
    events = [
        _ev(0, "write", 4096, 0.0, 0.1),
        _ev(0, "read", 4096, 0.1, 0.2),  # different op: new phase
        _ev(0, "write", 4096, 0.2, 0.3),  # back: second occurrence
    ]
    phases = PhaseDetector().detect(events)
    assert len(phases) == 2
    by_op = {p.signature[0]: p for p in phases}
    assert by_op["write"].occurrences == 2
    assert by_op["read"].occurrences == 1
