"""MADbench2 model tests: characterization vs Table VIII and execution."""

import pytest

from repro.simengine import Environment
from repro.clusters.builder import build_system
from repro.storage.base import MiB
from repro.workloads.madbench import MadBenchConfig, characterize_madbench, run_madbench
from conftest import small_config


class TestConfig:
    def test_block_bytes_paper_values(self):
        c16 = MadBenchConfig(kpix=18, nprocs=16)
        assert c16.block_bytes == pytest.approx(162 * 1e6, rel=0.01)  # "162 MB"
        c64 = MadBenchConfig(kpix=18, nprocs=64)
        assert c64.block_bytes == pytest.approx(40.5 * 1e6, rel=0.01)  # "40.5 MB"

    def test_filetype_validation(self):
        with pytest.raises(ValueError):
            MadBenchConfig(filetype="both")

    def test_iomode_validation(self):
        with pytest.raises(ValueError):
            MadBenchConfig(iomode="async")


class TestCharacterization:
    """Paper Table VIII."""

    def test_unique_16p(self):
        char = characterize_madbench(MadBenchConfig(nprocs=16, filetype="unique"))
        assert char["num_files"] == 16
        assert char["numio_read"] == 16  # per file: 8 (W) + 8 (C)
        assert char["numio_write"] == 16  # 8 (S) + 8 (W)

    def test_shared_16p(self):
        char = characterize_madbench(MadBenchConfig(nprocs=16, filetype="shared"))
        assert char["num_files"] == 1
        assert char["numio_read"] == 256  # 16 ops x 16 procs on the one file
        assert char["numio_write"] == 256

    def test_shared_64p(self):
        char = characterize_madbench(MadBenchConfig(nprocs=64, filetype="shared"))
        assert char["numio_read"] == 1024
        assert char["numio_write"] == 1024

    def test_totals_equal_across_filetypes(self):
        u = characterize_madbench(MadBenchConfig(nprocs=16, filetype="unique"))
        s = characterize_madbench(MadBenchConfig(nprocs=16, filetype="shared"))
        assert u["numio_read_total"] == s["numio_read_total"] == 256


class TestExecution:
    def run_one(self, filetype, nprocs=4):
        system = build_system(Environment(), small_config(n_compute=2))
        cfg = MadBenchConfig(kpix=1, nbin=4, nprocs=nprocs, filetype=filetype,
                             path="/nfs/mb", busywork_s=0.05)
        return run_madbench(system, cfg)

    def test_unique_runs(self):
        res = self.run_one("unique")
        assert res.execution_time > 0
        for col in ("S_w", "W_w", "W_r", "C_r"):
            assert res.rate(col) > 0
            assert res.time(col) > 0

    def test_shared_runs(self):
        res = self.run_one("shared")
        assert res.io_time > 0
        assert res.io_time < res.execution_time

    def test_phase_structure_in_trace(self):
        res = self.run_one("unique")
        writes = res.tracer.count_ops("write")
        reads = res.tracer.count_ops("read")
        # S: 4 writes, W: 4+4, C: 4 reads, per proc
        assert writes == 2 * 4 * res.config.nprocs
        assert reads == 2 * 4 * res.config.nprocs

    def test_busywork_contributes_to_exec_time(self):
        res = self.run_one("unique")
        # 3 functions x nbin busy slots x 0.05s at least
        assert res.execution_time >= 3 * 4 * 0.05

    def test_rates_are_aggregate(self):
        res = self.run_one("shared")
        per_proc_bytes = res.config.block_bytes * res.config.nbin
        assert res.functions["S"].bytes_written == per_proc_bytes * res.config.nprocs
