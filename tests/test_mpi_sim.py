"""Simulated-MPI tests: world construction, p2p, rendezvous."""

import pytest

from repro.mpi.sim import MPIWorld, Rendezvous
from repro.simengine import Environment
from conftest import small_config
from repro.clusters.builder import build_system


def make_world(nprocs=4, n_compute=2, placement="block"):
    system = build_system(Environment(), small_config(n_compute=n_compute))
    return system, system.world(nprocs, placement=placement)


class TestWorld:
    def test_rank_count(self):
        _, w = make_world(4)
        assert w.nprocs == 4
        assert [r.rank for r in w.ranks] == [0, 1, 2, 3]

    def test_block_placement(self):
        _, w = make_world(4, n_compute=2)
        names = [r.node.name for r in w.ranks]
        assert names == ["n0", "n0", "n1", "n1"]

    def test_round_robin_placement(self):
        _, w = make_world(4, n_compute=2, placement="round_robin")
        names = [r.node.name for r in w.ranks]
        assert names == ["n0", "n1", "n0", "n1"]

    def test_bad_placement_rejected(self):
        system = build_system(Environment(), small_config())
        with pytest.raises(ValueError):
            system.world(2, placement="diagonal")

    def test_nprocs_validation(self):
        system = build_system(Environment(), small_config())
        with pytest.raises(ValueError):
            system.world(0)

    def test_aggregator_ranks_one_per_node(self):
        _, w = make_world(4, n_compute=2)
        assert w.aggregator_ranks() == [0, 2]


class TestPointToPoint:
    def test_send_recv_payload(self):
        system, w = make_world(2)
        out = {}

        def prog(mpi):
            if mpi.rank == 0:
                yield mpi.send(1, 1024, tag=7, payload={"x": 1})
            else:
                data = yield mpi.recv(0, tag=7)
                out["data"] = data

        system.env.run(w.run_program(prog))
        assert out["data"] == {"x": 1}

    def test_send_takes_network_time(self):
        system, w = make_world(2)

        def prog(mpi):
            if mpi.rank == 0:
                yield mpi.send(1, 10 * 1024 * 1024)
            else:
                yield mpi.recv(0)

        system.env.run(w.run_program(prog))
        assert system.env.now > 0.05  # 10 MB over GbE

    def test_same_node_send_is_fast(self):
        system, w = make_world(2, n_compute=1)

        def prog(mpi):
            if mpi.rank == 0:
                yield mpi.send(1, 10 * 1024 * 1024)
            else:
                yield mpi.recv(0)

        system.env.run(w.run_program(prog))
        assert system.env.now < 0.05  # memcpy, not wire

    def test_tag_matching(self):
        system, w = make_world(2)
        out = []

        def prog(mpi):
            if mpi.rank == 0:
                yield mpi.send(1, 8, tag=2, payload="two")
                yield mpi.send(1, 8, tag=1, payload="one")
            else:
                one = yield mpi.recv(0, tag=1)
                two = yield mpi.recv(0, tag=2)
                out.extend([one, two])

        system.env.run(w.run_program(prog))
        assert out == ["one", "two"]

    def test_bad_destination_rejected(self):
        system, w = make_world(2)

        def prog(mpi):
            if mpi.rank == 0:
                mpi.send(5, 8)
            yield mpi.barrier()

        with pytest.raises(ValueError):
            system.env.run(w.run_program(prog))

    def test_isend_overlaps_compute(self):
        system, w = make_world(2)
        marks = {}

        def prog(mpi):
            if mpi.rank == 0:
                req = mpi.isend(1, 50 * 1024 * 1024)
                yield mpi.compute(seconds=0.2)
                marks["compute_done"] = mpi.now
                yield req
                marks["send_done"] = mpi.now
            else:
                yield mpi.recv(0)

        system.env.run(w.run_program(prog))
        # 50MB takes ~0.45s; compute finished first, overlapped
        assert marks["compute_done"] == pytest.approx(0.2, abs=0.01)
        assert marks["send_done"] > marks["compute_done"]


class TestRendezvous:
    def test_last_arriver_flagged(self):
        env = Environment()
        rv = Rendezvous(env, 3)
        p0, last0 = rv.arrive("x", 0, "a")
        p1, last1 = rv.arrive("x", 1, "b")
        p2, last2 = rv.arrive("x", 2, "c")
        assert (last0, last1, last2) == (False, False, True)
        assert p0 is p1 is p2
        assert p2.all_arrived.value == {0: "a", 1: "b", 2: "c"}

    def test_sequence_numbers_separate_call_sites(self):
        env = Environment()
        rv = Rendezvous(env, 2)
        pa, _ = rv.arrive("x", 0)
        pb, _ = rv.arrive("x", 0)  # rank 0's second call site
        assert pa is not pb
        pa2, last = rv.arrive("x", 1)
        assert pa2 is pa and last

    def test_kinds_are_independent(self):
        env = Environment()
        rv = Rendezvous(env, 2)
        pa, _ = rv.arrive("barrier", 0)
        pb, _ = rv.arrive("bcast", 0)
        assert pa is not pb


class TestCompute:
    def test_compute_seconds(self):
        system, w = make_world(1)

        def prog(mpi):
            yield mpi.compute(seconds=1.5)

        system.env.run(w.run_program(prog))
        assert system.env.now == pytest.approx(1.5)

    def test_compute_flops_uses_node_rate(self):
        system, w = make_world(1)
        node = w.ranks[0].node

        def prog(mpi):
            yield mpi.compute(flops=node.spec.core_gflops * 1e9)

        system.env.run(w.run_program(prog))
        assert system.env.now == pytest.approx(1.0)


def test_run_program_collects_return_values():
    system, w = make_world(3)

    def prog(mpi):
        yield mpi.compute(seconds=0.01)
        return mpi.rank * 10

    values = system.env.run(w.run_program(prog))
    assert values == [0, 10, 20]
