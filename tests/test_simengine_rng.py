"""Tests for the deterministic RNG registry."""

from repro.simengine import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_reproducible_across_registries():
    a = RngRegistry(seed=7).stream("disk.0").random(5)
    b = RngRegistry(seed=7).stream("disk.0").random(5)
    assert (a == b).all()


def test_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.stream("disk.0").random(5)
    b = reg.stream("disk.1").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not (a == b).all()


def test_spawn_is_deterministic():
    a = RngRegistry(seed=3).spawn("child").stream("s").random(3)
    b = RngRegistry(seed=3).spawn("child").stream("s").random(3)
    assert (a == b).all()


def test_adding_consumer_does_not_perturb_existing():
    reg1 = RngRegistry(seed=9)
    first = reg1.stream("a").random(4)
    reg2 = RngRegistry(seed=9)
    reg2.stream("b")  # extra consumer created first
    second = reg2.stream("a").random(4)
    assert (first == second).all()
