"""simlint: every rule fires on its fixture and stays quiet on clean code.

Fixtures are linted through ``lint_source`` with a path inside
``src/repro/simengine/`` so the determinism rules (which only apply to
the simulation packages) are in scope; scope behaviour itself is
covered explicitly below.
"""

import json
import textwrap

from repro.analysis.simlint import RULES, Finding, lint_paths, lint_source, main

SIM_PATH = "src/repro/simengine/fixture.py"
# obs (reporting) is outside both the determinism scope and the
# serve-package scope — workloads/tracing joined SIM_PACKAGES when the
# grammar/ingest layers started feeding the DES
APP_PATH = "src/repro/obs/fixture.py"


def findings(src, path=SIM_PATH, **kw):
    return lint_source(textwrap.dedent(src), path, **kw)


def rules_of(fs):
    return [f.rule for f in fs]


# ---------------------------------------------------------------------------
# wall-clock


def test_wall_clock_fires_on_time_and_datetime():
    fs = findings(
        """
        import time
        import datetime
        from datetime import datetime as dt

        def stamp():
            a = time.time()
            b = time.monotonic()
            c = datetime.datetime.now()
            d = dt.utcnow()
            return a, b, c, d
        """
    )
    assert rules_of(fs) == ["wall-clock"] * 4
    assert fs[0].line == 7


def test_wall_clock_quiet_on_env_now():
    assert findings(
        """
        def stamp(env):
            return env.now + 0.5
        """
    ) == []


def test_wall_clock_fires_on_perf_counter_aliases():
    fs = findings(
        """
        from time import perf_counter

        def t():
            return perf_counter()
        """
    )
    assert rules_of(fs) == ["wall-clock"]


# ---------------------------------------------------------------------------
# unseeded-random


def test_unseeded_random_fires_on_module_stream_and_bare_rng():
    fs = findings(
        """
        import random
        import numpy as np
        from numpy.random import default_rng

        def draw():
            a = random.random()
            b = random.Random()
            c = np.random.rand(3)
            d = default_rng()
            return a, b, c, d
        """
    )
    assert rules_of(fs) == ["unseeded-random"] * 4


def test_seeded_random_is_clean():
    assert findings(
        """
        import random
        from numpy.random import default_rng

        def draw(seed):
            a = random.Random(seed).random()
            b = default_rng(seed).normal()
            return a, b
        """
    ) == []


# ---------------------------------------------------------------------------
# set-iteration


def test_set_iteration_fires_on_literals_names_and_comprehensions():
    fs = findings(
        """
        def schedule(pending: set, extra):
            for p in pending:
                emit(p)
            for q in {1, 2, 3}:
                emit(q)
            both = set(extra)
            return [emit(r) for r in both]
        """
    )
    assert rules_of(fs) == ["set-iteration"] * 3


def test_sorted_set_iteration_is_clean():
    assert findings(
        """
        def schedule(pending: set):
            for p in sorted(pending):
                emit(p)
        """
    ) == []


# ---------------------------------------------------------------------------
# resource-release


def test_request_without_release_fires():
    fs = findings(
        """
        def leaky(res):
            req = res.request()
            work(req)
        """
    )
    assert rules_of(fs) == ["resource-release"]
    assert "never releases" in fs[0].message


def test_release_outside_finally_fires():
    fs = findings(
        """
        def risky(res):
            req = res.request()
            work(req)
            res.release(req)
        """
    )
    assert rules_of(fs) == ["resource-release"]
    assert "finally" in fs[0].message


def test_release_in_finally_is_clean():
    assert findings(
        """
        def safe(res):
            req = res.request()
            try:
                work(req)
            finally:
                res.release(req)
        """
    ) == []


# ---------------------------------------------------------------------------
# unit-mix


def test_unit_mix_fires_on_add_sub_and_compare():
    fs = findings(
        """
        def mix(size_bytes, size_mib, wait_s, wait_ms):
            a = size_bytes + size_mib
            b = wait_s - wait_ms
            c = wait_s < wait_ms
            return a, b, c
        """
    )
    assert rules_of(fs) == ["unit-mix"] * 3


def test_same_unit_arithmetic_is_clean():
    assert findings(
        """
        def total(head_bytes, tail_bytes, setup_s, run_s):
            return head_bytes + tail_bytes, setup_s + run_s
        """
    ) == []


def test_unit_mix_applies_outside_sim_packages():
    fs = findings(
        """
        def mix(a_bytes, b_mib):
            return a_bytes + b_mib
        """,
        path=APP_PATH,
    )
    assert rules_of(fs) == ["unit-mix"]


# ---------------------------------------------------------------------------
# scope


def test_determinism_rules_skip_non_sim_packages():
    src = """
        import time

        def stamp():
            return time.time()
        """
    assert findings(src, path=APP_PATH) == []
    # ... unless sim scope is forced
    assert rules_of(findings(src, path=APP_PATH, sim_scope=True)) == ["wall-clock"]


def test_workloads_and_tracing_are_in_scope():
    # the grammar/ingest layers compile specs and replay traces that
    # feed the DES, so the determinism rules cover them
    src = """
        import time

        def stamp():
            return time.time()
        """
    for pkg in ("workloads", "tracing"):
        path = f"src/repro/{pkg}/fixture.py"
        assert rules_of(findings(src, path=path)) == ["wall-clock"]


def test_rules_filter():
    src = """
        import time

        def stamp(a_bytes, b_mib):
            return time.time(), a_bytes + b_mib
        """
    assert rules_of(findings(src, rules=("unit-mix",))) == ["unit-mix"]
    assert rules_of(findings(src, rules=("wall-clock",))) == ["wall-clock"]


# ---------------------------------------------------------------------------
# pragmas


def test_ignore_pragma_suppresses_named_rule():
    fs = findings(
        """
        import time

        def stamp():
            return time.time()  # simlint: ignore[wall-clock]
        """
    )
    assert fs == []


def test_ignore_pragma_is_rule_specific():
    fs = findings(
        """
        import time

        def stamp():
            return time.time()  # simlint: ignore[unit-mix]
        """
    )
    assert rules_of(fs) == ["wall-clock"]


def test_bare_ignore_and_skip_file():
    assert findings(
        """
        import time

        def stamp():
            return time.time()  # simlint: ignore
        """
    ) == []
    assert findings(
        """
        # simlint: skip-file
        import time

        def stamp():
            return time.time()
        """
    ) == []


# ---------------------------------------------------------------------------
# syntax errors, repo cleanliness, CLI


def test_syntax_error_is_reported_not_raised():
    fs = findings("def broken(:\n")
    assert [f.rule for f in fs] == ["syntax"]


def test_finding_render_and_dict_roundtrip():
    f = Finding("x.py", 3, 7, "unit-mix", "boom")
    assert f.render() == "x.py:3:7: [unit-mix] boom"
    assert f.as_dict() == {
        "path": "x.py", "line": 3, "col": 7, "rule": "unit-mix", "message": "boom",
    }


def test_repository_is_lint_clean():
    assert lint_paths(["src", "scripts"]) == []


def test_cli_exit_codes_and_json(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "simengine"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text("import time\n\ndef t():\n    return time.time()\n")
    assert main([str(tmp_path / "src")]) == 1
    captured = capsys.readouterr()
    assert "[wall-clock]" in captured.out

    assert main([str(tmp_path / "src"), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc[0]["rule"] == "wall-clock"

    bad.write_text("def t(env):\n    return env.now\n")
    assert main([str(tmp_path / "src")]) == 0


def test_all_rules_documented():
    assert set(RULES) == {
        "wall-clock", "unseeded-random", "set-iteration",
        "resource-release", "unit-mix", "fault-rng", "generator-serve",
    }


# ---------------------------------------------------------------------------
# fault-rng

FAULTS_PATH = "src/repro/faults/fixture.py"


def test_fault_rng_flags_random_import_in_faults():
    fs = findings("import random\n", path=FAULTS_PATH)
    assert "fault-rng" in rules_of(fs)


def test_fault_rng_flags_from_import_in_faults():
    fs = findings("from random import choice\n", path=FAULTS_PATH)
    assert "fault-rng" in rules_of(fs)


def test_fault_rng_flags_seeded_random_in_faults():
    # Even a *seeded* stdlib Random is banned inside repro.faults:
    # fault jitter must come from the schedule-seeded env.rng streams.
    fs = findings(
        """
        import random

        def jitter():
            rng = random.Random(42)
            return rng.random()
        """,
        path=FAULTS_PATH,
    )
    assert "fault-rng" in rules_of(fs)


def test_fault_rng_quiet_outside_faults_package():
    # The same seeded code in another sim package is fine (only the
    # unseeded-random rule polices those, and a seeded Random passes).
    fs = findings(
        """
        import random

        def jitter():
            rng = random.Random(42)
            return rng.random()
        """,
        path=SIM_PATH,
    )
    assert "fault-rng" not in rules_of(fs)


def test_fault_rng_quiet_on_env_rng_streams():
    fs = findings(
        """
        def jitter(env, name):
            return env.rng.stream(name).random()
        """,
        path=FAULTS_PATH,
    )
    assert fs == []


# ---------------------------------------------------------------------------
# generator-serve

STORAGE_PATH = "src/repro/storage/fixture.py"


def test_generator_serve_flags_event_yield_in_storage():
    fs = findings(
        """
        def _serve(self, req):
            yield self.env.timeout(0.01)
            return req.total_bytes
        """,
        path=STORAGE_PATH,
    )
    assert "generator-serve" in rules_of(fs)


def test_generator_serve_flags_yield_from_delegation():
    fs = findings(
        """
        def _write(self, inode, req):
            yield from self._flush_entries([(1, 2, 3)])
        """,
        path=STORAGE_PATH,
    )
    assert "generator-serve" in rules_of(fs)


def test_generator_serve_quiet_on_data_generators():
    # PageCache.coalesce-style pure data generators yield tuples, not
    # simulation events — they are not serve loops
    fs = findings(
        """
        def coalesce(entries):
            for fileid, seg, dirty in sorted(entries):
                yield (fileid, seg, dirty)
        """,
        path=STORAGE_PATH,
    )
    assert "generator-serve" not in rules_of(fs)


def test_generator_serve_quiet_outside_serve_packages():
    # the same serve loop in simengine (the kernel's own machinery) or
    # the reporting layer is out of scope
    src = """
    def _serve(self, req):
        yield self.env.timeout(0.01)
    """
    assert "generator-serve" not in rules_of(findings(src, path=SIM_PATH))
    assert "generator-serve" not in rules_of(findings(src, path=APP_PATH))


def test_generator_serve_pragma_suppresses():
    fs = findings(
        """
        def _serve(self, req):  # simlint: ignore[generator-serve]
            yield self.env.timeout(0.01)
        """,
        path=STORAGE_PATH,
    )
    assert "generator-serve" not in rules_of(fs)
