"""Network model tests: serialisation, latency, contention, duplex."""

import pytest

from repro.simengine import Environment
from repro.hardware.network import GIGABIT, Link, LinkSpec, Network
from repro.storage.base import MiB


def make_net(env, names=("a", "b", "srv")):
    return Network(env, list(names), GIGABIT)


def test_effective_bandwidth_below_line_rate():
    assert GIGABIT.bandwidth_Bps < GIGABIT.raw_bandwidth_Bps


def test_single_transfer_near_wire_speed():
    env = Environment()
    net = make_net(env)
    env.run(net.transfer("a", "srv", 100 * MiB))
    rate = 100 * MiB / env.now
    assert rate == pytest.approx(GIGABIT.bandwidth_Bps, rel=0.05)


def test_small_message_dominated_by_latency():
    env = Environment()
    net = make_net(env)
    env.run(net.transfer("a", "b", 64))
    assert env.now >= GIGABIT.latency_s


def test_many_to_one_shares_receiver_downlink():
    env = Environment()
    net = make_net(env)
    e1 = net.transfer("a", "srv", 50 * MiB)
    e2 = net.transfer("b", "srv", 50 * MiB)
    env.run(env.all_of([e1, e2]))
    agg = 100 * MiB / env.now
    assert agg == pytest.approx(GIGABIT.bandwidth_Bps, rel=0.10)


def test_disjoint_pairs_run_in_parallel():
    env = Environment()
    net = Network(env, ["a", "b", "c", "d"], GIGABIT)
    e1 = net.transfer("a", "b", 50 * MiB)
    e2 = net.transfer("c", "d", 50 * MiB)
    env.run(env.all_of([e1, e2]))
    agg = 100 * MiB / env.now
    assert agg == pytest.approx(2 * GIGABIT.bandwidth_Bps, rel=0.10)


def test_full_duplex_opposite_directions():
    env = Environment()
    net = make_net(env)
    e1 = net.transfer("a", "b", 50 * MiB)
    e2 = net.transfer("b", "a", 50 * MiB)
    env.run(env.all_of([e1, e2]))
    agg = 100 * MiB / env.now
    assert agg == pytest.approx(2 * GIGABIT.bandwidth_Bps, rel=0.10)


def test_local_transfer_never_touches_fabric():
    env = Environment()
    net = make_net(env)
    env.run(net.transfer("a", "a", 100 * MiB))
    assert net.uplinks["a"].bytes_carried == 0
    assert env.now < 100 * MiB / GIGABIT.bandwidth_Bps


def test_bulk_message_count_charges_per_message_cpu():
    env1 = Environment()
    net1 = make_net(env1)
    env1.run(net1.transfer("a", "b", 1024, count=1000))
    env2 = Environment()
    net2 = make_net(env2)
    env2.run(net2.transfer("a", "b", 1024 * 1000, count=1))
    assert env1.now > env2.now  # per-message overhead


def test_unknown_endpoint_rejected():
    env = Environment()
    net = make_net(env)
    with pytest.raises(KeyError):
        net.transfer("a", "nope", 1)


def test_duplicate_endpoint_rejected():
    with pytest.raises(ValueError):
        Network(Environment(), ["x", "x"])


def test_add_endpoint():
    env = Environment()
    net = make_net(env)
    net.add_endpoint("new")
    env.run(net.transfer("a", "new", 1 * MiB))
    assert net.downlinks["new"].bytes_carried == 1 * MiB
    with pytest.raises(ValueError):
        net.add_endpoint("new")


def test_invalid_transfer_geometry():
    env = Environment()
    net = make_net(env)
    link = Link(env, GIGABIT)
    with pytest.raises(ValueError):
        link.transfer(-1)
    with pytest.raises(ValueError):
        link.transfer(10, count=0)


def test_estimate_point_to_point_close_to_simulated():
    env = Environment()
    net = make_net(env)
    est = net.estimate_point_to_point(10 * MiB)
    env.run(net.transfer("a", "b", 10 * MiB))
    assert est == pytest.approx(env.now, rel=0.15)


def test_link_utilization_tracked():
    env = Environment()
    net = make_net(env)
    env.run(net.transfer("a", "b", 10 * MiB))
    assert 0.5 < net.uplinks["a"].utilization <= 1.0
