"""Page-cache tests, including hypothesis property tests on the LRU
bookkeeping invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.base import MiB
from repro.storage.cache import CacheSpec, PageCache

SEG = 64 * 1024


def make_cache(nsegs=8, **kw):
    return PageCache(CacheSpec(capacity_bytes=nsegs * SEG, segment_bytes=SEG, **kw))


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.touch(1, 0)
        c.insert(1, 0)
        assert c.touch(1, 0)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_segments_of(self):
        c = make_cache()
        assert list(c.segments_of(0, SEG)) == [0]
        assert list(c.segments_of(0, SEG + 1)) == [0, 1]
        assert list(c.segments_of(SEG - 1, 2)) == [0, 1]
        assert list(c.segments_of(0, 0)) == []

    def test_lru_eviction_order(self):
        c = make_cache(nsegs=2)
        c.insert(1, 0)
        c.insert(1, 1)
        c.touch(1, 0)  # refresh 0; victim should be 1
        c.insert(1, 2)
        assert c.is_resident(1, 0)
        assert not c.is_resident(1, 1)

    def test_dirty_victims_returned(self):
        c = make_cache(nsegs=1)
        c.insert(1, 0, dirty_bytes=100)
        victims = c.insert(1, 1)
        assert victims == [(1, 0, 100)]
        assert c.stats.dirty_evictions == 1

    def test_clean_victims_silent(self):
        c = make_cache(nsegs=1)
        c.insert(1, 0)
        assert c.insert(1, 1) == []

    def test_dirty_accumulates_capped_at_segment(self):
        c = make_cache()
        c.insert(1, 0, dirty_bytes=SEG - 10)
        c.insert(1, 0, dirty_bytes=100)
        assert c.dirty_amount(1, 0) == SEG
        assert c.dirty_bytes == SEG

    def test_mark_clean(self):
        c = make_cache()
        c.insert(1, 0, dirty_bytes=50)
        c.mark_clean(1, 0)
        assert c.dirty_bytes == 0
        assert c.is_resident(1, 0)

    def test_drop_file(self):
        c = make_cache()
        c.insert(1, 0, dirty_bytes=10)
        c.insert(2, 0, dirty_bytes=20)
        dropped = c.drop_file(1)
        assert dropped == 1
        assert not c.is_resident(1, 0)
        assert c.is_resident(2, 0)
        assert c.dirty_bytes == 20

    def test_file_fully_resident(self):
        c = make_cache()
        for s in range(3):
            c.insert(7, s)
        assert c.file_fully_resident(7, 3 * SEG)
        assert c.file_fully_resident(7, 3 * SEG - 1)
        assert not c.file_fully_resident(7, 3 * SEG + 1)

    def test_thresholds(self):
        c = make_cache(nsegs=10, dirty_ratio=0.4, background_ratio=0.1)
        assert not c.need_background_flush
        c.insert(1, 0, dirty_bytes=SEG)
        c.insert(1, 1, dirty_bytes=SEG)
        assert c.need_background_flush  # 2/10 > 0.1
        assert not c.need_throttle
        for s in range(2, 6):
            c.insert(1, s, dirty_bytes=SEG)
        assert c.need_throttle  # 6/10 > 0.4

    def test_dirty_segments_oldest_first(self):
        c = make_cache()
        c.insert(1, 5, dirty_bytes=10)
        c.insert(1, 2, dirty_bytes=10)
        c.insert(1, 9, dirty_bytes=10)
        assert [s for _f, s, _d in c.dirty_segments()] == [5, 2, 9]
        assert len(c.dirty_segments(limit=2)) == 2

    def test_dirty_segments_filter_by_file(self):
        c = make_cache()
        c.insert(1, 0, dirty_bytes=10)
        c.insert(2, 0, dirty_bytes=10)
        assert c.dirty_segments(fileid=2) == [(2, 0, 10)]


class TestCoalesce:
    def test_adjacent_merge(self):
        runs = list(PageCache.coalesce([(1, 0, 5), (1, 1, 5), (1, 2, 5)]))
        assert runs == [(1, 0, 3, 15)]

    def test_gap_splits(self):
        runs = list(PageCache.coalesce([(1, 0, 5), (1, 2, 5)]))
        assert runs == [(1, 0, 1, 5), (1, 2, 1, 5)]

    def test_files_never_merge(self):
        runs = list(PageCache.coalesce([(1, 0, 5), (2, 1, 5)]))
        assert len(runs) == 2

    def test_unsorted_input_handled(self):
        runs = list(PageCache.coalesce([(1, 2, 1), (1, 0, 1), (1, 1, 1)]))
        assert runs == [(1, 0, 3, 3)]

    def test_empty(self):
        assert list(PageCache.coalesce([])) == []


class TestSpecValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            CacheSpec(capacity_bytes=0)

    def test_bad_ratios(self):
        with pytest.raises(ValueError):
            CacheSpec(capacity_bytes=MiB, dirty_ratio=0.1, background_ratio=0.5)


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------
op = st.tuples(
    st.sampled_from(["insert_clean", "insert_dirty", "touch", "clean", "drop"]),
    st.integers(min_value=1, max_value=3),  # fileid
    st.integers(min_value=0, max_value=20),  # segment
)


@settings(max_examples=200, deadline=None)
@given(st.lists(op, max_size=60), st.integers(min_value=1, max_value=8))
def test_cache_invariants(ops, nsegs):
    """Residency never exceeds capacity; dirty total equals the per-segment sum;
    per-file resident counters match reality."""
    c = make_cache(nsegs=nsegs)
    for kind, f, s in ops:
        if kind == "insert_clean":
            c.insert(f, s)
        elif kind == "insert_dirty":
            c.insert(f, s, dirty_bytes=SEG // 2)
        elif kind == "touch":
            c.touch(f, s)
        elif kind == "clean":
            c.mark_clean(f, s)
        elif kind == "drop":
            c.drop_file(f)
        # invariants after every step
        assert len(c._segs) <= nsegs
        assert c.dirty_bytes == sum(c._segs.values())
        assert c.dirty_bytes >= 0
        for fid in (1, 2, 3):
            actual = sum(1 for k in c._segs if k[0] == fid)
            assert c.file_resident_segments(fid) == actual


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)), min_size=1, max_size=40))
def test_coalesce_partition_property(entries):
    """Coalesced runs exactly partition the distinct input keys and
    conserve total dirty bytes."""
    uniq = {}
    for seg, dirty in entries:
        uniq[(1, seg)] = dirty
    items = [(f, s, d) for (f, s), d in uniq.items()]
    runs = list(PageCache.coalesce(items))
    covered = []
    total_dirty = 0
    for f, first, n, dirty in runs:
        covered.extend((f, s) for s in range(first, first + n))
        total_dirty += dirty
    assert sorted(covered) == sorted(uniq)
    assert total_dirty == sum(uniq.values())
