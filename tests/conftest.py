"""Shared fixtures: small, fast simulated systems.

Tests use deliberately tiny nodes (64 MiB RAM, small files) so whole
cluster simulations run in milliseconds while exercising the same
code paths as the paper-scale runs in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.simengine import Environment
from repro.hardware import DiskSpec, NodeSpec, RAIDConfig, RAIDLevel
from repro.clusters.builder import System, SystemConfig, build_system
from repro.storage.base import KiB, MiB

SMALL_DISK = DiskSpec(capacity_bytes=4 * 1024 * MiB)
SMALL_NODE = NodeSpec(cores=2, core_gflops=4.0, ram_bytes=64 * MiB)


def small_config(
    device: str = "jbod",
    n_compute: int = 2,
    separate_data_network: bool = True,
    **kw,
) -> SystemConfig:
    if device == "jbod":
        dev = RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=SMALL_DISK)
    elif device == "raid1":
        dev = RAIDConfig(level=RAIDLevel.RAID1, ndisks=2, disk=SMALL_DISK)
    elif device == "raid5":
        dev = RAIDConfig(level=RAIDLevel.RAID5, ndisks=5, stripe_bytes=256 * KiB, disk=SMALL_DISK)
    else:
        raise ValueError(device)
    return SystemConfig(
        name=f"test-{device}",
        n_compute=n_compute,
        compute_spec=SMALL_NODE,
        server_spec=SMALL_NODE,
        local_device=dev,
        server_device=dev,
        separate_data_network=separate_data_network,
        **kw,
    )


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def system() -> System:
    """A tiny 2-node JBOD system on a fresh environment."""
    return build_system(Environment(), small_config())


@pytest.fixture
def raid5_system() -> System:
    return build_system(Environment(), small_config("raid5"))


def run_proc(env: Environment, gen):
    """Run a generator as a process to completion; return its value."""
    return env.run(env.process(gen))
