"""Unit tests for the DES kernel: events, processes, combinators, clock."""

import pytest

from repro.simengine import AllOf, AnyOf, Environment, Event, SimulationError


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_custom_start():
    assert Environment(5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.run(env.timeout(2.5))
    assert env.now == 2.5


def test_timeout_value_returned():
    env = Environment()
    assert env.run(env.timeout(1.0, value="done")) == "done"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_returns_value():
    env = Environment()

    def prog():
        yield env.timeout(1)
        return 42

    assert env.run(env.process(prog())) == 42


def test_process_sequences_timeouts():
    env = Environment()

    def prog():
        yield env.timeout(1)
        yield env.timeout(2)
        return env.now

    assert env.run(env.process(prog())) == 3.0


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(3)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return (result, env.now)

    assert env.run(env.process(parent())) == ("child-result", 3.0)


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()

    def waiter():
        val = yield ev
        return val

    def trigger():
        yield env.timeout(1)
        ev.succeed("payload")

    env.process(trigger())
    assert env.run(env.process(waiter())) == "payload"


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()

    class Boom(Exception):
        pass

    def waiter():
        try:
            yield ev
        except Boom:
            return "caught"
        return "missed"

    def trigger():
        yield env.timeout(1)
        ev.fail(Boom())

    env.process(trigger())
    assert env.run(env.process(waiter())) == "caught"


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise RuntimeError("inner")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as e:
            return str(e)

    assert env.run(env.process(parent())) == "inner"


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def prog():
        yield env.timeout(1)
        raise ValueError("unhandled")

    ev = env.process(prog())
    with pytest.raises(ValueError, match="unhandled"):
        env.run(ev)


def test_all_of_waits_for_all():
    env = Environment()
    values = env.run(env.all_of([env.timeout(1, "a"), env.timeout(3, "b"), env.timeout(2, "c")]))
    assert values == ["a", "b", "c"]
    assert env.now == 3.0


def test_all_of_empty_fires_immediately():
    env = Environment()
    assert env.run(env.all_of([])) == []
    assert env.now == 0.0


def test_any_of_fires_on_first():
    env = Environment()
    value = env.run(env.any_of([env.timeout(5, "slow"), env.timeout(1, "fast")]))
    assert value == "fast"
    assert env.now == 1.0


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.any_of([])


def test_run_until_time_stops_clock():
    env = Environment()
    env.timeout(10)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_past_time_rejected():
    env = Environment(10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def prog(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(prog(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_yield_non_event_raises():
    env = Environment()

    def prog():
        yield 42

    with pytest.raises(SimulationError):
        env.run(env.process(prog()))


def test_run_until_event_exhaustion_raises():
    env = Environment()
    never = env.event()
    env.timeout(1)
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_immediate_resume_on_processed_event():
    """Yielding an already-processed event resumes without deadlock."""
    env = Environment()
    ev = env.timeout(1, value="x")
    env.run(ev)

    def prog():
        val = yield ev
        return val

    assert env.run(env.process(prog())) == "x"


def test_nested_all_any_composition():
    env = Environment()
    inner = env.all_of([env.timeout(2, 1), env.timeout(1, 2)])
    value = env.run(env.any_of([inner, env.timeout(10, "late")]))
    assert value == [1, 2]
    assert env.now == 2.0


# ----------------------------------------------------------------------
# combinator callback pruning and absolute-time wake-ups
# ----------------------------------------------------------------------
def test_anyof_prunes_losing_callbacks():
    """A fired AnyOf detaches itself from the still-pending events."""
    env = Environment()
    fast = env.timeout(1)
    slow = env.timeout(100)
    any_ev = env.any_of([fast, slow])
    assert any(cb == any_ev._on_child for cb in slow.callbacks)
    env.run(any_ev)
    assert all(cb != any_ev._on_child for cb in slow.callbacks)


def test_allof_failfast_prunes_pending_callbacks():
    """AllOf that fails fast detaches from the events still pending."""
    env = Environment()
    bad = env.event()
    slow = env.timeout(100)
    all_ev = env.all_of([bad, slow])
    bad.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        env.run(all_ev)
    assert all(cb != all_ev._on_child for cb in slow.callbacks)


def test_anyof_pending_events_still_usable_after_prune():
    """Losing events fire normally for other waiters after the prune."""
    env = Environment()
    fast = env.timeout(1, "fast")
    slow = env.timeout(2, "slow")
    assert env.run(env.any_of([fast, slow])) == "fast"
    assert env.run(slow) == "slow"
    assert env.now == 2.0


def test_wake_at_absolute_time():
    from repro.simengine import Wake

    env = Environment()
    ev = env.wake_at(3.5, value="tick")
    assert isinstance(ev, Wake)
    assert env.run(ev) == "tick"
    assert env.now == 3.5


def test_wake_at_past_time_rejected():
    env = Environment()
    env.run(env.timeout(2))
    with pytest.raises(ValueError):
        env.wake_at(1.0)


def test_run_until_time_sets_clock_exactly_once():
    """Regression: run(until=t) with an empty calendar must assign the
    clock once (it used to set it both in the loop epilogue and in a
    duplicated final assignment)."""
    sets = []

    class Probe(Environment):
        def __setattr__(self, name, value):
            if name == "_now":
                sets.append(value)
            object.__setattr__(self, name, value)

    env = Probe()
    sets.clear()  # drop the constructor's initial assignment
    env.run(until=4.0)
    assert sets == [4.0]
    assert env.now == 4.0


def test_run_until_time_with_events_sets_clock_once_per_step():
    sets = []

    class Probe(Environment):
        def __setattr__(self, name, value):
            if name == "_now":
                sets.append(value)
            object.__setattr__(self, name, value)

    env = Probe()
    env.timeout(1)
    env.timeout(2)
    sets.clear()
    env.run(until=5.0)
    # one assignment per processed event, plus exactly one for the stop time
    assert sets == [1.0, 2.0, 5.0]
