"""Resource-utilization report tests."""

import pytest

from repro.simengine import Environment
from repro.core.utilization import capture_utilization, snapshot_utilization
from repro.hardware.disk import Disk
from repro.hardware.network import GIGABIT, Network
from repro.storage.base import IORequest, MiB
from repro.clusters.builder import build_system
from repro.workloads.btio import BTIOConfig, run_btio
from conftest import small_config


def test_idle_system_all_zero(system):
    system.env.run(system.env.timeout(1.0))
    rep = snapshot_utilization(system)
    assert all(r.utilization == 0.0 for r in rep.resources)
    assert rep.bottleneck() is None


def test_disk_bound_run_flags_server_disk():
    system = build_system(Environment(), small_config())
    fs = system.export
    env = system.env
    inode = env.run(fs.create("/big"))
    env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=256)))
    env.run(fs.sync())
    rep = snapshot_utilization(system)
    hot = rep.hottest(n=1)[0]
    assert hot.kind == "disk"
    assert "ionode" in hot.name
    assert hot.utilization > 0.5


def test_network_bound_run_flags_links():
    system = build_system(Environment(), small_config())
    env = system.env
    mount = system.nfs_mounts["n0"]
    inode = env.run(mount.create("/f"))
    env.run(mount.submit_direct(inode, IORequest("write", 0, 1 * MiB, count=128)))
    rep = snapshot_utilization(system)
    links = rep.hottest(kind="link", n=2)
    assert links[0].utilization > 0.5
    assert any("ionode" in l.name for l in links)


def test_io_bound_app_shows_saturation_compute_bound_does_not():
    # simple subtype: server-side serialisation, links busy
    s1 = build_system(Environment(), small_config(n_compute=2))
    run_btio(s1, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
    rep = snapshot_utilization(s1)
    # class S is tiny: nothing should be saturated by the full subtype
    assert rep.bottleneck(threshold=0.9) is None


def test_since_interval(system):
    env = system.env
    env.run(env.timeout(10.0))
    rep_all = snapshot_utilization(system)
    rep_tail = snapshot_utilization(system, since_s=9.0)
    assert rep_tail.interval_s == pytest.approx(1.0)
    assert rep_all.interval_s == pytest.approx(10.0)


def _busy_writes(system, count=64):
    fs = system.export
    inode = system.env.run(fs.create("/load"))
    system.env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=count)))
    system.env.run(fs.sync())


def test_busy_prelude_not_overreported():
    """Regression: cumulative busy seconds divided by a truncated
    interval used to report a saturated (clamped ~100%) disk for an
    interval the system spent entirely idle.  A baseline snapshot at
    the interval start diffs that prelude away."""
    system = build_system(Environment(), small_config())
    env = system.env
    _busy_writes(system)
    t1 = env.now
    baseline = capture_utilization(system)
    env.run(env.timeout(9 * t1))  # long idle tail

    tail = snapshot_utilization(system, baseline=baseline)
    assert tail.interval_s == pytest.approx(9 * t1)
    assert all(r.utilization == 0.0 for r in tail.resources)
    assert all(r.busy_s == 0.0 for r in tail.resources)
    # the full-run view still sees the prelude's busy time
    full = snapshot_utilization(system)
    assert full.hottest(kind="disk", n=1)[0].busy_s > 0


def test_rebaseline_gives_per_run_view():
    """System.rebaseline() resets the default diffing origin, so a
    reused (not rebuilt) system reports per-run utilization."""
    system = build_system(Environment(), small_config())
    env = system.env
    _busy_writes(system)
    system.rebaseline()
    t1 = env.now
    env.run(env.timeout(5.0))
    rep = snapshot_utilization(system)
    assert rep.interval_s == pytest.approx(env.now - t1)
    assert all(r.utilization == 0.0 for r in rep.resources)


def test_warm_reset_clears_baseline_and_counters():
    system = build_system(Environment(), small_config())
    _busy_writes(system)
    system.reset()
    assert system.counters_baseline.t_s == 0.0
    assert all(b == 0.0 for _k, b in system.counters_baseline.busy.values())
    system.env.run(system.env.timeout(1.0))
    rep = snapshot_utilization(system)
    assert all(r.utilization == 0.0 for r in rep.resources)


def test_disk_utilization_uses_measured_interval(env):
    """Regression: Disk.utilization divided by env.now including
    pre-run setup time, understating the busy fraction."""
    disk = Disk(env)
    env.run(env.timeout(10.0))  # setup idle time
    disk.mark_measurement()
    t0 = env.now
    env.run(disk.submit("write", 0, 1 * MiB, count=64))
    busy = disk.stats.busy_s
    expected = busy / (env.now - t0)
    assert disk.utilization == pytest.approx(expected)
    assert disk.utilization > 0.9  # busy nearly the whole interval
    # the old computation would have diluted it under busy/(10+run)
    assert disk.utilization > busy / env.now * 5


def test_disk_reset_clears_measurement_mark(env):
    disk = Disk(env)
    env.run(disk.submit("write", 0, 1 * MiB, count=4))
    disk.mark_measurement()
    disk.reset()
    assert disk.utilization == 0.0
    env.run(disk.submit("write", 0, 1 * MiB, count=4))
    assert disk.utilization > 0.0


def test_link_utilization_uses_measured_interval(env):
    net = Network(env, ["a", "b"], GIGABIT)
    env.run(env.timeout(10.0))
    up = net.uplinks["a"]
    down = net.downlinks["b"]
    up.mark_measurement()
    down.mark_measurement()
    t0 = env.now
    env.run(net.transfer("a", "b", 1 * MiB, count=32))
    assert up.utilization == pytest.approx(up.busy_s / (env.now - t0))
    assert up.utilization > 0.9
    assert down.utilization > 0.9


def test_render(system):
    system.env.run(system.env.timeout(0.5))
    text = snapshot_utilization(system).render(top=5)
    assert "resource utilization" in text
    assert "application itself limits" in text
