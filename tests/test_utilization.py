"""Resource-utilization report tests."""

import pytest

from repro.simengine import Environment
from repro.core.utilization import snapshot_utilization
from repro.storage.base import IORequest, MiB
from repro.clusters.builder import build_system
from repro.workloads.btio import BTIOConfig, run_btio
from conftest import small_config


def test_idle_system_all_zero(system):
    system.env.run(system.env.timeout(1.0))
    rep = snapshot_utilization(system)
    assert all(r.utilization == 0.0 for r in rep.resources)
    assert rep.bottleneck() is None


def test_disk_bound_run_flags_server_disk():
    system = build_system(Environment(), small_config())
    fs = system.export
    env = system.env
    inode = env.run(fs.create("/big"))
    env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=256)))
    env.run(fs.sync())
    rep = snapshot_utilization(system)
    hot = rep.hottest(n=1)[0]
    assert hot.kind == "disk"
    assert "ionode" in hot.name
    assert hot.utilization > 0.5


def test_network_bound_run_flags_links():
    system = build_system(Environment(), small_config())
    env = system.env
    mount = system.nfs_mounts["n0"]
    inode = env.run(mount.create("/f"))
    env.run(mount.submit_direct(inode, IORequest("write", 0, 1 * MiB, count=128)))
    rep = snapshot_utilization(system)
    links = rep.hottest(kind="link", n=2)
    assert links[0].utilization > 0.5
    assert any("ionode" in l.name for l in links)


def test_io_bound_app_shows_saturation_compute_bound_does_not():
    # simple subtype: server-side serialisation, links busy
    s1 = build_system(Environment(), small_config(n_compute=2))
    run_btio(s1, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
    rep = snapshot_utilization(s1)
    # class S is tiny: nothing should be saturated by the full subtype
    assert rep.bottleneck(threshold=0.9) is None


def test_since_interval(system):
    env = system.env
    env.run(env.timeout(10.0))
    rep_all = snapshot_utilization(system)
    rep_tail = snapshot_utilization(system, since_s=9.0)
    assert rep_tail.interval_s == pytest.approx(1.0)
    assert rep_all.interval_s == pytest.approx(10.0)


def test_render(system):
    system.env.run(system.env.timeout(0.5))
    text = snapshot_utilization(system).render(top=5)
    assert "resource utilization" in text
    assert "application itself limits" in text
