"""Edge cases and failure paths across the stack."""

import pytest

from repro.simengine import Environment
from repro.hardware import Node, NodeSpec, Network, GIGABIT, RAIDArray, RAIDConfig, RAIDLevel
from repro.storage import LocalFS, NFSMount, NFSServer, NFSSpec
from repro.storage.base import IORequest, KiB, MiB
from repro.storage.cache import CacheSpec
from repro.clusters.builder import build_system
from repro.tracing import IOEvent, render_timeline
from conftest import SMALL_DISK, SMALL_NODE, small_config


class TestNFSVariants:
    def build(self, spec):
        env = Environment()
        net = Network(env, ["c0", "srv"], GIGABIT)
        srv_node = Node(env, "srv", SMALL_NODE)
        arr = RAIDArray(env, RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=SMALL_DISK))
        export = LocalFS(env, srv_node, arr)
        server = NFSServer(env, srv_node, export, net, spec)
        mount = NFSMount(env, Node(env, "c0", SMALL_NODE), server,
                         cache_spec=CacheSpec(capacity_bytes=8 * MiB))
        return env, server, mount

    def test_non_durable_commit_faster(self):
        def run(durable):
            env, srv, mount = self.build(NFSSpec(commit_durable=durable))
            inode = env.run(mount.create("/f"))
            env.run(mount.submit(inode, IORequest("write", 0, 1 * MiB, count=4)))
            t0 = env.now
            env.run(mount.fsync(inode))
            return env.now - t0

        assert run(False) < run(True)

    def test_larger_wsize_fewer_rpcs(self):
        def rpcs(wsize):
            env, srv, mount = self.build(NFSSpec(wsize=wsize))
            inode = env.run(mount.create("/f"))
            env.run(mount.submit(inode, IORequest("write", 0, 4 * MiB)))
            env.run(mount.fsync(inode))
            return mount.stats.rpcs

        assert rpcs(1 * MiB) < rpcs(64 * KiB)

    def test_zero_byte_write(self):
        env, srv, mount = self.build(NFSSpec())
        inode = env.run(mount.create("/f"))
        got = env.run(mount.submit(inode, IORequest("write", 0, 0)))
        assert got == 0
        assert inode.size == 0


class TestLocalFSOverflow:
    def test_huge_sparse_stream_uses_arithmetic_path(self):
        """A sparse stream touching far more segments than the cache
        holds must not blow up the event count (OVERFLOW_FACTOR)."""
        env = Environment()
        node = Node(env, "n", NodeSpec(ram_bytes=16 * MiB))
        arr = RAIDArray(env, RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=SMALL_DISK))
        fs = LocalFS(env, node, arr, cache_spec=CacheSpec(capacity_bytes=4 * MiB))
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=64)))
        # stride >= segment, count far above 4x cache segments (16)
        env.run(fs.submit(inode, IORequest("write", 0, 2 * KiB, count=500, stride=2 * MiB)))
        assert env.now > 0  # completed without pathological expansion

    def test_read_beyond_eof_clamped(self):
        env = Environment()
        node = Node(env, "n", SMALL_NODE)
        arr = RAIDArray(env, RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=SMALL_DISK))
        fs = LocalFS(env, node, arr)
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB)))
        # read far past EOF: charged, but no crash and no infinite fill
        env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB, count=16)))
        assert inode.size == 1 * MiB


class TestMPIEdge:
    def test_recv_blocks_until_matching_send(self):
        system = build_system(Environment(), small_config(n_compute=2))
        world = system.world(2)
        order = []

        def prog(mpi):
            if mpi.rank == 1:
                got = yield mpi.recv(0, tag=9)
                order.append(("recv", got, mpi.now))
            else:
                yield mpi.compute(seconds=1.0)
                yield mpi.send(1, 64, tag=9, payload="late")
                order.append(("sent", mpi.now))

        system.env.run(world.run_program(prog))
        recv = [o for o in order if o[0] == "recv"][0]
        assert recv[1] == "late"
        assert recv[2] >= 1.0

    def test_messages_fifo_within_tag(self):
        system = build_system(Environment(), small_config(n_compute=2))
        world = system.world(2)
        got = []

        def prog(mpi):
            if mpi.rank == 0:
                for k in range(3):
                    yield mpi.send(1, 64, tag=1, payload=k)
            else:
                for _ in range(3):
                    got.append((yield mpi.recv(0, tag=1)))

        system.env.run(world.run_program(prog))
        assert got == [0, 1, 2]

    def test_single_rank_world(self):
        system = build_system(Environment(), small_config(n_compute=1))
        world = system.world(1)

        def prog(mpi):
            yield mpi.barrier()
            yield mpi.allreduce(1024)
            f = yield mpi.file_open("/nfs/solo.dat", "w")
            yield f.write_at_all(0, 1 * MiB)
            yield f.close()
            return "ok"

        assert system.env.run(world.run_program(prog)) == ["ok"]


class TestTimelineEdge:
    def test_zero_duration_events(self):
        events = [IOEvent(0, "write", 0, 10, 1, None, 1.0, 1.0, "/f")]
        art = render_timeline(events, width=10)
        assert "W" in art

    def test_single_event(self):
        events = [IOEvent(0, "read", 0, 10, 1, None, 0.0, 5.0, "/f")]
        art = render_timeline(events, width=5)
        rank_line = [l for l in art.splitlines() if l.startswith("rank")][0]
        assert rank_line.count("R") == 5


class TestMethodologySubsets:
    def test_evaluate_subset_of_configs(self):
        from repro.core import Methodology
        from repro.workloads.apps import BTIOApplication
        from repro.workloads.btio import BTIOConfig

        m = Methodology(
            {d: small_config(d) for d in ("jbod", "raid5")},
            block_sizes=(64 * KiB,),
            char_file_bytes=8 * MiB,
            ior_nprocs=2,
            ior_file_bytes=4 * MiB,
        )
        m.characterize(names=["jbod"])
        assert set(m.tables) == {"jbod"}
        app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
        reports = m.evaluate(app, names=["jbod"])
        assert set(reports) == {"jbod"}
