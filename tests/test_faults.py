"""Deterministic fault injection and the degraded-mode report.

The acceptance bar (ISSUE): a faulted evaluation must be byte-for-byte
deterministic under a fixed schedule seed, the sanitizer must stay
green while rebuild/retransmit traffic flows, NFS stalls must bound —
never hang — the run, and RAID 10 must earn a measurably better
graceful-degradation verdict than RAID 5 for an array-bound workload.
Characterization sweeps here are tiny (tables only feed the report's
used-percentage rows, not the simulated run itself).
"""

import json

import pytest

from repro.clusters import aohyper_config, build_system
from repro.core import Methodology
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.simengine.core import Environment
from repro.storage.base import KiB, MiB
from repro.workloads.apps import BTIOApplication, MadBenchApplication
from repro.workloads.btio import BTIOConfig
from repro.workloads.madbench import MadBenchConfig

SMALL_SWEEP = dict(
    block_sizes=(256 * KiB, 1 * MiB),
    char_file_bytes=8 * MiB,
    ior_file_bytes=64 * MiB,
)

BTIO_S = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full"))


@pytest.fixture(scope="module")
def meth():
    m = Methodology(
        {n: aohyper_config(n) for n in ("raid5", "raid10")}, **SMALL_SWEEP
    )
    m.characterize()
    return m


def faults_json(report) -> str:
    return json.dumps(report.faults, sort_keys=True)


# ----------------------------------------------------------------------
# schedule validation and (de)serialization
# ----------------------------------------------------------------------
class TestSchedule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(t_s=1.0, kind="meteor_strike")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultSpec(t_s=-0.1, kind="disk_fail")

    def test_duration_kinds_need_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(t_s=1.0, kind="nfs_stall")

    def test_rejects_bad_direction_and_network(self):
        with pytest.raises(ValueError):
            FaultSpec(t_s=0.0, kind="link_flap", duration_s=1.0, direction="sideways")
        with pytest.raises(ValueError):
            FaultSpec(t_s=0.0, kind="link_flap", duration_s=1.0, network="wifi")

    def test_entries_sorted_by_time(self):
        sched = FaultSchedule(
            entries=(
                FaultSpec(t_s=2.0, kind="nfs_stall", duration_s=1.0),
                FaultSpec(t_s=0.5, kind="disk_fail"),
            )
        )
        assert [s.t_s for s in sched] == [0.5, 2.0]

    def test_json_roundtrip(self):
        sched = FaultSchedule(
            entries=(
                FaultSpec(t_s=0.1, kind="disk_fail", disk=1, rebuild_rate_Bps=10**7),
                FaultSpec(t_s=0.2, kind="latency_spike", duration_s=0.5, factor=3.0),
            ),
            seed=42,
        )
        again = FaultSchedule.from_json(sched.to_json())
        assert again == sched
        assert again.seed == 42

    def test_save_load(self, tmp_path):
        path = tmp_path / "sched.json"
        sched = FaultSchedule(
            entries=(FaultSpec(t_s=0.3, kind="nfs_stall", duration_s=2.0),), seed=7
        )
        sched.save(path)
        assert FaultSchedule.load(path) == sched

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises((TypeError, ValueError)):
            FaultSchedule.from_dict(
                {"entries": [{"t_s": 0.1, "kind": "disk_fail", "blast_radius": 9}]}
            )


# ----------------------------------------------------------------------
# injector arming
# ----------------------------------------------------------------------
class TestInjector:
    def _system(self):
        return build_system(Environment(), aohyper_config("raid5"))

    def test_arm_twice_raises(self):
        system = self._system()
        inj = FaultInjector(
            system, FaultSchedule(entries=(FaultSpec(t_s=0.1, kind="disk_fail"),))
        )
        inj.arm()
        with pytest.raises(RuntimeError, match="armed"):
            inj.arm()

    def test_arm_rejects_bad_disk_index(self):
        system = self._system()
        inj = FaultInjector(
            system,
            FaultSchedule(entries=(FaultSpec(t_s=0.1, kind="disk_fail", disk=99),)),
        )
        with pytest.raises(ValueError, match="out of range"):
            inj.arm()

    def test_arm_rejects_unknown_node(self):
        system = self._system()
        inj = FaultInjector(
            system,
            FaultSchedule(
                entries=(FaultSpec(t_s=0.1, kind="disk_fail", target="n999"),)
            ),
        )
        with pytest.raises((KeyError, ValueError)):
            inj.arm()

    def test_arm_rejects_unknown_endpoint(self):
        system = self._system()
        inj = FaultInjector(
            system,
            FaultSchedule(
                entries=(
                    FaultSpec(
                        t_s=0.1, kind="link_flap", target="nowhere", duration_s=1.0
                    ),
                )
            ),
        )
        with pytest.raises(ValueError, match="endpoint"):
            inj.arm()


# ----------------------------------------------------------------------
# end-to-end: the repo's smoke schedule (disk failure + NFS stall)
# ----------------------------------------------------------------------
SMOKE = FaultSchedule(
    entries=(
        FaultSpec(t_s=0.13, kind="disk_fail", disk=0, rebuild_rate_Bps=50_000_000),
        FaultSpec(t_s=0.25, kind="nfs_stall", duration_s=2.5),
    ),
    seed=1234,
)


class TestFaultedEvaluation:
    def test_deterministic_sanitized_and_bounded(self, meth):
        healthy = meth.evaluate(BTIO_S, names=["raid5"])["raid5"]
        r1 = meth.evaluate(BTIO_S, names=["raid5"], faults=SMOKE, sanitize=True)[
            "raid5"
        ]
        r2 = meth.evaluate(BTIO_S, names=["raid5"], faults=SMOKE, sanitize=True)[
            "raid5"
        ]
        # byte-identical degraded-mode report under the same seed
        assert faults_json(r1) == faults_json(r2)

        f = r1.faults
        assert f["baseline"] == "twin-run"
        assert f["verdict"] in ("graceful", "degraded")
        assert f["data_loss"] is None
        # rebuild traffic flowed on the server array
        assert f["rebuild"]["ionode"]["bytes_read"] > 0
        assert f["windows"][0]["outcome"] in ("rebuilding", "rebuilt")
        # the stall produced retries, not a hang: the run completed with
        # a bounded slowdown (stall duration plus retransmit tax)
        assert f["nfs"]["retransmits"] > 0
        assert r1.execution_time_s <= healthy.execution_time_s + 2.5 + 1.5
        # instrumentation is forced on: utilization re-attribution present
        assert "utilization_windows" in f["windows"][0]
        # sanitizer green: rebuild/retransmit bytes accounted as overhead
        assert r1.sanitizer["violations"] == []
        assert r1.sanitizer["counters"]["rebuild_bytes"]["read"] > 0
        assert r1.sanitizer["counters"]["retransmit_bytes"] > 0
        # phase-replay extrapolation forced off under faults: every
        # iteration is simulated for real
        assert r1.replay is None or r1.replay.extrapolated == 0

    def test_second_failure_is_terminal_data_loss(self, meth):
        sched = FaultSchedule(
            entries=(
                FaultSpec(t_s=0.10, kind="disk_fail", disk=0),
                FaultSpec(t_s=0.15, kind="disk_fail", disk=1),
            ),
            seed=9,
        )
        r = meth.evaluate(BTIO_S, names=["raid5"], faults=sched)["raid5"]
        assert r.faults["verdict"] == "data-loss"
        assert r.faults["data_loss"]
        assert r.faults["rebuild"]["ionode"]["aborted"] == 1

    def test_link_faults_complete_with_outcomes(self, meth):
        sched = FaultSchedule(
            entries=(
                FaultSpec(
                    t_s=0.05, kind="link_flap", target="ionode", duration_s=0.2
                ),
                FaultSpec(
                    t_s=0.30,
                    kind="latency_spike",
                    target="ionode",
                    duration_s=0.2,
                    factor=4.0,
                ),
            ),
            seed=3,
        )
        r = meth.evaluate(BTIO_S, names=["raid5"], faults=sched)["raid5"]
        outcomes = [w["outcome"] for w in r.faults["windows"]]
        assert outcomes == ["flapped", "spiked"]
        assert r.faults["data_loss"] is None


# ----------------------------------------------------------------------
# graceful-degradation verdicts: RAID 10 vs RAID 5
# ----------------------------------------------------------------------
def test_raid10_degrades_more_gracefully_than_raid5(meth):
    """An out-of-core array-bound workload: losing a member costs RAID 5
    a 2x media-traffic penalty on every stripe, while RAID 10 only loses
    one mirror pair's redundancy."""
    app = MadBenchApplication(
        MadBenchConfig(
            kpix=8,
            nprocs=4,
            filetype="unique",
            path="/local/madbench",
            busywork_s=0.0,
        )
    )
    verdicts = {}
    ratios = {}
    for name in ("raid5", "raid10"):
        healthy = meth.evaluate(app, names=[name])[name]
        sched = FaultSchedule(
            entries=(
                FaultSpec(
                    t_s=0.3 * healthy.execution_time_s,
                    kind="disk_fail",
                    target="n0",
                    disk=0,
                    rebuild_rate_Bps=50_000_000,
                ),
            ),
            seed=11,
        )
        r = meth.evaluate(app, names=[name], faults=sched)[name]
        verdicts[name] = r.faults["verdict"]
        ratios[name] = min(r.faults["bandwidth_ratio"].values())
    assert verdicts["raid5"] == "degraded"
    assert verdicts["raid10"] == "graceful"
    assert ratios["raid10"] > ratios["raid5"]


def test_run_report_carries_faults_section(meth):
    from repro.obs.runreport import build_run_report

    reports = meth.evaluate(BTIO_S, names=["raid5"], faults=SMOKE)
    doc = build_run_report("btio", reports)
    assert doc["configs"]["raid5"]["faults"]["verdict"] in (
        "graceful", "degraded", "data-loss"
    )


# ----------------------------------------------------------------------
# strict schedule parsing: collected errors (FaultScheduleError)
# ----------------------------------------------------------------------
class TestStrictScheduleParsing:
    def test_unknown_top_level_keys_rejected(self):
        from repro.faults import FaultScheduleError

        with pytest.raises(FaultScheduleError) as excinfo:
            FaultSchedule.from_dict(
                {"seed": 1, "entries": [], "jitter": 0.1, "comment": "hi"}
            )
        (err,) = excinfo.value.errors
        assert err == "schedule: unknown keys ['comment', 'jitter']"

    def test_all_errors_collected_not_just_first(self):
        """Multi-error style matches WorkloadSpecError: one pass reports
        every problem, each prefixed with where it lives."""
        from repro.faults import FaultScheduleError

        doc = {
            "seed": "zero",
            "entries": [
                {"t_s": 0.1, "kind": "warp_core_breach"},
                {"t_s": -1.0, "kind": "disk_fail"},
                "not-an-object",
                {"t_s": 0.2, "kind": "nfs_stall", "duration_s": 1.0, "blast": 9},
            ],
            "surprise": True,
        }
        with pytest.raises(FaultScheduleError) as excinfo:
            FaultSchedule.from_dict(doc)
        errors = excinfo.value.errors
        assert len(errors) == 6
        assert any(e.startswith("schedule: unknown keys") for e in errors)
        assert any(e.startswith("seed:") for e in errors)
        assert any(e.startswith("entries[0]:") and "warp_core_breach" in e for e in errors)
        assert any(e.startswith("entries[1]:") for e in errors)
        assert any(e.startswith("entries[2]:") for e in errors)
        assert any(e.startswith("entries[3]:") and "blast" in e for e in errors)
        # and the exception message joins them all
        assert str(excinfo.value).count(";") == 5

    def test_faultscheduleerror_is_a_valueerror(self):
        from repro.faults import FaultScheduleError

        assert issubclass(FaultScheduleError, ValueError)
        with pytest.raises(ValueError):
            FaultSchedule.from_dict({"entries": [{"kind": "nope", "t_s": 0}]})

    def test_out_of_order_windows_normalise_and_round_trip(self):
        """Out-of-order entries are not an error: construction sorts by
        injection time, and the JSON round trip is a fixed point."""
        doc = {
            "seed": 5,
            "entries": [
                {"t_s": 9.0, "kind": "latency_spike", "duration_s": 1.0, "factor": 2.0},
                {"t_s": 1.0, "kind": "disk_fail"},
                {"t_s": 4.0, "kind": "nfs_stall", "duration_s": 0.5},
            ],
        }
        sched = FaultSchedule.from_dict(doc)
        assert [e.t_s for e in sched] == [1.0, 4.0, 9.0]
        again = FaultSchedule.from_json(sched.to_json())
        assert again == sched
        assert again.to_json() == sched.to_json()

    def test_bool_seed_rejected(self):
        from repro.faults import FaultScheduleError

        with pytest.raises(FaultScheduleError, match="seed"):
            FaultSchedule.from_dict({"seed": True, "entries": []})

    def test_non_list_entries_rejected(self):
        from repro.faults import FaultScheduleError

        with pytest.raises(FaultScheduleError, match="entries"):
            FaultSchedule.from_dict({"entries": {"t_s": 0, "kind": "disk_fail"}})
