"""Tests for the bonnie++, b_eff_io and synthetic workload generators."""

import pytest

from repro.simengine import Environment
from repro.clusters.builder import build_system
from repro.storage.base import KiB, MiB
from repro.workloads.beffio import PATTERNS, run_beffio
from repro.workloads.bonnie import run_bonnie
from repro.workloads.synthetic import SyntheticPhase, SyntheticSpec, run_synthetic
from conftest import small_config


class TestBonnie:
    def test_all_metrics_reported(self, system):
        res = run_bonnie(system, "n0", "/local/b.tmp", file_bytes=32 * MiB, seek_count=200)
        d = res.as_dict()
        assert set(d) == {"putc", "write", "rewrite", "getc", "read", "seeks"}
        assert all(v > 0 for v in d.values())

    def test_block_write_at_least_as_fast_as_putc(self, system):
        res = run_bonnie(system, "n0", "/local/b.tmp", file_bytes=32 * MiB, seek_count=100)
        assert res.write_Bps >= 0.8 * res.putc_Bps

    def test_seeks_are_iops_scale(self, system):
        res = run_bonnie(system, "n0", "/local/b.tmp", file_bytes=64 * MiB, seek_count=300)
        assert 10 < res.seeks_per_s < 100000

    def test_cleans_up_file(self, system):
        run_bonnie(system, "n0", "/local/b.tmp", file_bytes=16 * MiB, seek_count=50)
        assert not system.node("n0").vfs.exists("/local/b.tmp")


class TestBeffIO:
    def test_pattern_matrix_complete(self):
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_beffio(system, 2, chunk_sizes=(64 * KiB,), chunks_per_pattern=4)
        assert set(res.write_Bps) == set(PATTERNS)
        for pattern in PATTERNS:
            assert res.write_Bps[pattern][64 * KiB] > 0
            assert res.read_Bps[pattern][64 * KiB] > 0

    def test_effective_bandwidth_positive(self):
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_beffio(system, 2, chunk_sizes=(64 * KiB,), chunks_per_pattern=4)
        assert res.effective_bandwidth("write") > 0
        assert res.effective_bandwidth("read") > 0

    def test_empty_result_zero(self):
        from repro.workloads.beffio import BeffIOResult

        assert BeffIOResult(nprocs=2).effective_bandwidth() == 0.0


class TestSynthetic:
    def make_spec(self, **kw):
        defaults = dict(
            phases=(
                SyntheticPhase("write", 256 * KiB, repetitions=3, compute_s=0.01),
                SyntheticPhase("read", 256 * KiB, repetitions=3),
            ),
            nprocs=2,
        )
        defaults.update(kw)
        return SyntheticSpec(**defaults)

    def test_runs_and_traces(self):
        system = build_system(Environment(), small_config(n_compute=2))
        res = run_synthetic(system, self.make_spec())
        assert res.execution_time > 0
        assert 0 < res.io_time <= res.execution_time
        assert res.tracer.count_ops("write") == 3 * 2
        assert res.tracer.count_ops("read") == 3 * 2

    def test_collective_phases(self):
        system = build_system(Environment(), small_config(n_compute=2))
        spec = self.make_spec(
            phases=(SyntheticPhase("write", 512 * KiB, repetitions=2, collective=True),)
        )
        res = run_synthetic(system, spec)
        assert all(e.collective for e in res.tracer.events)

    def test_per_process_files(self):
        system = build_system(Environment(), small_config(n_compute=2))
        spec = self.make_spec(per_process_files=True, path="/nfs/syn.dat")
        run_synthetic(system, spec)
        assert system.export.exists("/nfs/syn.dat.0")
        assert system.export.exists("/nfs/syn.dat.1")

    def test_strided_phase_geometry_traced(self):
        system = build_system(Environment(), small_config(n_compute=2))
        spec = self.make_spec(
            phases=(SyntheticPhase("write", 4 * KiB, count=16, stride=16 * KiB),)
        )
        res = run_synthetic(system, spec)
        ev = res.tracer.events[0]
        assert ev.count == 16 and ev.stride == 16 * KiB

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticPhase("append", 1024)
        with pytest.raises(ValueError):
            SyntheticPhase("write", 0)
        with pytest.raises(ValueError):
            SyntheticSpec(phases=())
