"""Trace exporter tests: JSONL round-trip, Chrome trace schema."""

import json

from repro.obs.export import (
    EVENT_KEYS,
    TRACE_SCHEMA,
    chrome_trace,
    event_record,
    read_chrome_trace,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.tracing.events import IOEvent


def _events():
    return [
        IOEvent(rank=0, op="write", offset=0, nbytes=4096, count=2, stride=8192,
                t_start=0.1, t_end=0.3, path="/nfs/f", collective=True),
        IOEvent(rank=1, op="read", offset=4096, nbytes=1024, count=1, stride=None,
                t_start=0.4, t_end=0.45, path="/nfs/f", collective=False),
    ]


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = _events()
    n = write_events_jsonl(path, {"jbod": {"events": events}}, meta={"app": "t"})
    assert n == len(events)
    meta, runs = read_events_jsonl(path)
    assert meta["schema"] == TRACE_SCHEMA
    assert meta["app"] == "t"
    assert runs["jbod"] == events  # frozen dataclasses: full equality


def test_jsonl_schema_stable_keys(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_events_jsonl(path, {"jbod": {"events": _events()}})
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["type"] == "meta"
    for line in lines[1:]:
        # JSON objects preserve insertion order: every record carries
        # the exact documented key sequence
        assert list(json.loads(line)) == ["type", "config", *EVENT_KEYS]


def test_event_record_key_order():
    rec = event_record(_events()[0])
    assert list(rec) == ["type", *EVENT_KEYS]


def test_chrome_trace_schema(tmp_path):
    path = tmp_path / "trace.json"
    runs = {
        "jbod": {"events": _events(), "replay": {"phases": 3, "extrapolated": 10}},
        "raid5": {"events": _events()},
    }
    write_chrome_trace(path, runs, app="btio")
    doc = read_chrome_trace(path)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["schema"] == TRACE_SCHEMA
    assert doc["otherData"]["app"] == "btio"
    assert doc["otherData"]["replay"]["jbod"]["phases"] == 3

    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(xs) == 4  # 2 events x 2 configs
    for e in xs:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)
    # microsecond timestamps
    assert xs[0]["ts"] == 0.1 * 1e6
    assert xs[0]["dur"] == (0.3 - 0.1) * 1e6
    # one pid per config, named via metadata; one tid per rank
    names = {e["args"]["name"] for e in metas if e["name"] == "process_name"}
    assert names == {"jbod", "raid5"}
    assert {e["tid"] for e in xs} == {0, 1}
    pids = {e["pid"] for e in xs}
    assert len(pids) == 2


def test_chrome_trace_from_live_run():
    """The exporter consumes real tracer output unchanged."""
    from conftest import small_config
    from repro.clusters.builder import build_system
    from repro.simengine import Environment
    from repro.tracing import IOTracer
    from repro.workloads.btio import BTIOConfig, run_btio

    system = build_system(Environment(), small_config())
    tracer = IOTracer()
    run_btio(system, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"),
             tracer=tracer)
    doc = chrome_trace({"jbod": {"events": tracer.events}})
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(tracer.events) > 0
    assert all(e["dur"] >= 0 for e in xs)
