"""The sweep WAL: CRC framing, torn-tail recovery, manifest atomicity.

The acceptance bar is the WAL property — any prefix of the file is a
valid store, so an orchestrator SIGKILL'd mid-append loses at most the
unacknowledged record.  The hypothesis property test cuts the file at
*every possible byte boundary* of the final record and demands that
recovery + re-append reproduce the uninterrupted file byte-for-byte.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.fingerprint import canonical_json
from repro.sweep.store import (
    MANIFEST_SCHEMA,
    ResultStore,
    StoreError,
    parse_record,
    record_line,
)


def payload(i: int, **extra) -> dict:
    return {"fp": f"fp{i:04d}", "task": {"n": i}, "result": {"t": i * 0.5}, **extra}


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------
def test_record_line_is_canonical_and_parses_back():
    line = record_line(payload(1))
    assert line.endswith("\n")
    assert parse_record(line.encode()) == payload(1)
    # same payload, different dict insertion order -> identical line
    p = {"result": {"t": 0.5}, "task": {"n": 1}, "fp": "fp0001"}
    assert record_line(p) == line


def test_parse_record_rejects_bad_crc_and_garbage():
    line = record_line(payload(1))
    rec = json.loads(line)
    rec["payload"]["result"]["t"] = 99.0  # flip content, keep old crc
    tampered = json.dumps(rec).encode()
    assert parse_record(tampered) is None
    assert parse_record(b"not json\n") is None
    assert parse_record(b'{"crc": "00000000"}\n') is None
    assert parse_record(b'{"crc": "deadbeef", "payload": 3}\n') is None


# ----------------------------------------------------------------------
# round trips and idempotence
# ----------------------------------------------------------------------
def test_store_round_trip(tmp_path):
    with ResultStore(tmp_path, fsync=False) as s:
        for i in range(5):
            s.append_result(payload(i))
        s.append_quarantine({"fp": "fp9999", "attempts": 3, "failures": ["boom"]})
    again = ResultStore(tmp_path, fsync=False)
    assert set(again.results) == {f"fp{i:04d}" for i in range(5)}
    assert again.results["fp0002"] == payload(2)
    assert again.quarantine["fp9999"]["attempts"] == 3
    assert again.recovery == {"truncated_bytes": 0, "corrupt_records": 0}
    assert again.duplicate_mismatches == []


def test_append_is_idempotent_per_fingerprint(tmp_path):
    s = ResultStore(tmp_path, fsync=False)
    s.append_result(payload(1))
    s.append_result(payload(1))  # identical duplicate: no second line
    assert s.results_path.read_text() == record_line(payload(1))
    assert s.duplicate_mismatches == []


def test_duplicate_mismatch_is_flagged_not_overwritten(tmp_path):
    s = ResultStore(tmp_path, fsync=False)
    s.append_result(payload(1))
    differing = payload(1)
    differing["result"]["t"] = -1.0
    s.append_result(differing)
    assert s.duplicate_mismatches == ["fp0001"]
    assert s.results["fp0001"] == payload(1)  # first durable record wins


def test_first_record_wins_across_reopen(tmp_path):
    p2 = payload(1)
    p2["result"]["t"] = 42.0
    (tmp_path / "results.jsonl").write_text(record_line(payload(1)) + record_line(p2))
    s = ResultStore(tmp_path, fsync=False)
    assert s.results["fp0001"] == payload(1)
    assert s.duplicate_mismatches == ["fp0001"]


# ----------------------------------------------------------------------
# recovery: torn tails and interior corruption
# ----------------------------------------------------------------------
def test_torn_tail_truncated_on_open(tmp_path):
    full = record_line(payload(0)) + record_line(payload(1))
    torn = full[: len(full) - 7]  # cut inside the final record
    (tmp_path / "results.jsonl").write_text(torn)
    s = ResultStore(tmp_path, fsync=False)
    assert set(s.results) == {"fp0000"}
    assert s.recovery["truncated_bytes"] == len(torn) - len(record_line(payload(0)))
    # the file itself was truncated back to the durable prefix
    assert (tmp_path / "results.jsonl").read_text() == record_line(payload(0))


def test_bad_complete_final_line_is_a_torn_tail(tmp_path):
    text = record_line(payload(0)) + '{"crc": "00000000", "payload": {"fp": "x"}}\n'
    (tmp_path / "results.jsonl").write_text(text)
    s = ResultStore(tmp_path, fsync=False)
    assert set(s.results) == {"fp0000"}
    assert s.recovery["truncated_bytes"] > 0
    assert (tmp_path / "results.jsonl").read_text() == record_line(payload(0))


def test_interior_corruption_dropped_not_truncated(tmp_path):
    lines = [record_line(payload(0)), "CORRUPTED LINE\n", record_line(payload(2))]
    (tmp_path / "results.jsonl").write_text("".join(lines))
    s = ResultStore(tmp_path, fsync=False)
    assert set(s.results) == {"fp0000", "fp0002"}
    assert s.recovery["corrupt_records"] == 1
    assert s.recovery["truncated_bytes"] == 0
    # good records after the corruption survive on disk
    assert record_line(payload(2)) in (tmp_path / "results.jsonl").read_text()


def test_payload_without_fingerprint_counts_as_corrupt(tmp_path):
    (tmp_path / "results.jsonl").write_text(record_line({"task": {"n": 1}}))
    s = ResultStore(tmp_path, fsync=False)
    assert s.results == {}
    assert s.recovery["corrupt_records"] == 1


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 400), st.integers(2, 5))
def test_property_cut_anywhere_recovers_to_identical_file(tmp_path_factory, cut, n):
    """Kill-at-any-byte: cutting the WAL anywhere inside its final
    record, reopening (recovery truncates the torn tail), and
    re-appending the lost record yields a file byte-identical to the
    uninterrupted one."""
    tmp_path = tmp_path_factory.mktemp("wal")
    records = [payload(i) for i in range(n)]
    full = "".join(record_line(p) for p in records).encode()
    prefix_len = len(full) - len(record_line(records[-1]).encode())
    # cut somewhere in [prefix_len, len(full)) — inside the final record
    cut_at = prefix_len + cut % (len(full) - prefix_len)
    (tmp_path / "results.jsonl").write_bytes(full[:cut_at])

    s = ResultStore(tmp_path, fsync=False)
    assert set(s.results) == {p["fp"] for p in records[:-1]}
    for p in records:  # orchestrator recomputes whatever is missing
        s.append_result(p)
    s.close()
    assert (tmp_path / "results.jsonl").read_bytes() == full


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def test_manifest_round_trip_and_atomicity(tmp_path):
    s = ResultStore(tmp_path, fsync=False)
    manifest = {"schema": MANIFEST_SCHEMA, "params": {"seed": 3}, "tasks": []}
    s.write_manifest(manifest)
    assert s.read_manifest() == manifest
    # no temp file left behind
    assert [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")] == []


def test_read_manifest_errors(tmp_path):
    s = ResultStore(tmp_path, fsync=False)
    with pytest.raises(StoreError, match="no manifest"):
        s.read_manifest()
    s.manifest_path.write_text("{broken")
    with pytest.raises(StoreError, match="unreadable"):
        s.read_manifest()
    s.manifest_path.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(StoreError, match="not a"):
        s.read_manifest()


# ----------------------------------------------------------------------
# missing / resume bookkeeping
# ----------------------------------------------------------------------
def test_missing_respects_quarantine_flag(tmp_path):
    s = ResultStore(tmp_path, fsync=False)
    s.append_result(payload(0))
    s.append_quarantine({"fp": "fp0001", "attempts": 3, "failures": []})
    plan = ["fp0000", "fp0001", "fp0002"]
    assert s.missing(plan) == ["fp0002"]
    assert s.missing(plan, retry_quarantined=True) == ["fp0001", "fp0002"]


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [2, {"y": 0, "x": 1}]}) == canonical_json(
        {"a": [2, {"x": 1, "y": 0}], "b": 1}
    )
