"""simrace: static rules, runtime probe, minimizer, and pinned tie-order fixes.

Three layers under test, mirroring the module:

* static — each race rule fires on a synthetic known-race fixture and
  stays quiet on clean/suppressed/unreachable variants, and the real
  tree itself lints clean;
* dynamic — the tie-group recorder finds the synthetic race, a seeded
  reversal reproduces the divergence, and delta-debugging reduces it
  to a single irreducible flip group;
* differential — a quick exact-mode race matrix over BT-IO comes back
  clean with identical table hashes.

The last two classes pin tie-order fixes this detector surfaced: the
disk head serving same-arrival cohorts by offset (issue-order
invariance), and the analytic ring rebuild stamping replacement
requests with their rotate-out boundary and order key so a keyed
foreign arrival at the dissolve instant cannot overtake members the
exact rotation serves first.
"""

import textwrap
from contextlib import contextmanager

from repro.analysis.simrace import (
    RACE_RULES,
    lint_race_paths,
    lint_race_source,
    run_race_matrix,
)
from repro.hardware.disk import READ, Disk, DiskSpec
from repro.simengine import Environment
from repro.simengine import analytic as _analytic
from repro.simengine.core import Timeout
from repro.simengine.resources import FastHold, Resource
from repro.simengine.schedule import (
    Perturber,
    TieGroupRecorder,
    capture,
    minimize_flips,
    reverse_plans,
)
from repro.storage.base import KiB, MiB


def findings(src, path="src/repro/simengine/fixture.py", **kw):
    return lint_race_source(textwrap.dedent(src), path, **kw)


def rules_of(fs):
    return [f.rule for f in fs]


# ---------------------------------------------------------------------------
# layer 1: static rules
# ---------------------------------------------------------------------------

# two callbacks registered on events, both read-modify-writing the same
# state path with non-commutative updates — the canonical schedule race
KNOWN_RACE = """
    def wire(env, ev_a, ev_b, state):
        def on_a(ev):
            state["value"] = state["value"] * 2

        def on_b(ev):
            state["value"] = state["value"] + 3

        ev_a.callbacks.append(on_a)
        ev_b.callbacks.append(on_b)
"""


def test_tie_order_rmw_fires_on_known_race():
    fs = findings(KNOWN_RACE)
    # the multiplicative update is flagged; the `+ 3` is additive and
    # commutes, so it rides the additive exemption
    assert "tie-order-rmw" in rules_of(fs)
    assert all(f.rule in RACE_RULES for f in fs)


def test_rules_filter_narrows_output():
    assert findings(KNOWN_RACE, rules=["unordered-callback-iter"]) == []


def test_unreachable_function_not_flagged():
    # same RMW bodies, but never registered as callbacks — out of scope
    assert (
        findings(
            """
            def on_a(ev, state):
                state["value"] = state["value"] * 2

            def on_b(ev, state):
                state["value"] = state["value"] + 3
            """
        )
        == []
    )


def test_additive_rmw_is_exempt():
    # += on a shared counter commutes across tie order; only flagged
    # when some reachable callback branches on the same path
    assert (
        findings(
            """
            def wire(ev, state):
                def on_done(e):
                    state["count"] += 1

                ev.callbacks.append(on_done)
            """
        )
        == []
    )


def test_additive_rmw_flagged_when_branch_observed():
    # the counter's intermediate value gates a branch in the same
    # callback, so the additive exemption no longer applies
    fs = findings(
        """
        def wire(ev, state):
            def on_done(e):
                state["count"] += 1
                if state["count"] == state["want"]:
                    state["mode"] = "done"

            ev.callbacks.append(on_done)
        """
    )
    assert "tie-order-rmw" in rules_of(fs)


def test_pragma_suppresses():
    fs = findings(
        """
        def wire(ev_a, ev_b, state):
            def on_a(ev):
                state["value"] = state["value"] * 2  # simlint: ignore[tie-order-rmw]

            def on_b(ev):
                state["value"] = state["value"] + 3  # simlint: ignore[tie-order-rmw]

            ev_a.callbacks.append(on_a)
            ev_b.callbacks.append(on_b)
        """
    )
    assert fs == []


def test_unordered_callback_iter_fires():
    fs = findings(
        """
        def wire(ev, state):
            waiters = set()

            def on_done(e):
                for w in waiters:
                    w.succeed(None)

            ev.callbacks.append(on_done)
        """
    )
    assert "unordered-callback-iter" in rules_of(fs)


def test_seq_dependent_branch_fires():
    fs = findings(
        """
        def wire(ev, other):
            def on_done(e):
                if e._seq < other._seq:
                    return "first"
                return "second"

            ev.callbacks.append(on_done)
        """
    )
    assert "seq-dependent-branch" in rules_of(fs)


def test_tree_is_race_clean():
    # the repo's own simulation code carries no unsuppressed findings
    assert lint_race_paths(["src"]) == []


# ---------------------------------------------------------------------------
# layer 2: runtime probe + minimizer on the synthetic known race
# ---------------------------------------------------------------------------


@contextmanager
def _null():
    yield


def _race_scenario(hook=None):
    """Two same-(time, priority) callbacks from different executions
    RMW a shared value non-commutatively: base order yields (1*2)+3=5,
    the flipped order (1+3)*2=8."""
    state = {"value": 1}
    with capture(hook) if hook is not None else _null():
        env = Environment()

        def cb_double(ev):
            state["value"] = state["value"] * 2

        def cb_add(ev):
            state["value"] = state["value"] + 3

        def parent_a(ev):
            Timeout(env, 0.02).callbacks.append(cb_double)

        def parent_b(ev):
            Timeout(env, 0.01).callbacks.append(cb_add)

        Timeout(env, 0.01).callbacks.append(parent_a)
        Timeout(env, 0.02).callbacks.append(parent_b)
        env.run()
    return state["value"]


def test_recorder_finds_tie_group():
    rec = TieGroupRecorder()
    assert _race_scenario(rec) == 5
    groups = rec.groups()
    assert len(groups) == 1
    ((key, members),) = groups.items()
    assert key[1] == 0.03  # the contested instant
    assert len(members) == 2


def test_reversal_reproduces_divergence():
    rec = TieGroupRecorder()
    base = _race_scenario(rec)
    flipped = _race_scenario(Perturber(reverse_plans(rec.groups())))
    assert (base, flipped) == (5, 8)


def test_minimizer_reduces_to_single_flip_group():
    rec = TieGroupRecorder()
    base = _race_scenario(rec)
    groups = list(rec.groups())

    def diverges(subset):
        return _race_scenario(Perturber(reverse_plans(subset))) != base

    subset, _runs, irreducible = minimize_flips(groups, diverges)
    assert len(subset) == 1
    assert irreducible


def test_clean_scenario_survives_reversal():
    def clean(hook=None):
        out = []
        with capture(hook) if hook is not None else _null():
            env = Environment()
            for i in range(3):
                Timeout(env, 0.01).callbacks.append(
                    lambda ev, i=i: out.append(i)
                )
            env.run()
        return sorted(out)

    rec = TieGroupRecorder()
    base = clean(rec)
    assert clean(Perturber(reverse_plans(rec.groups()))) == base


# ---------------------------------------------------------------------------
# layer 3: quick differential matrix over BT-IO
# ---------------------------------------------------------------------------


def test_quick_race_matrix_is_clean():
    from repro.workloads.apps import BTIOApplication
    from repro.workloads.btio import BTIOConfig

    app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4))
    report = run_race_matrix(
        app,
        modes=("exact",),
        sanitize=(False,),
        seeds=(0,),
        block_sizes=(256 * KiB, 1 * MiB),
        char_file_bytes=8 * MiB,
        ior_file_bytes=64 * MiB,
    )
    assert report["schema"] == "repro.race-report/1"
    assert report["ok"] is True
    assert report["findings"] == []
    cells = report["cells"]
    assert len(cells) == 1
    assert all(c["tables"] == cells[0]["tables"] for c in cells)


# ---------------------------------------------------------------------------
# pinned fix: disk head resolves same-arrival cohorts by offset
# ---------------------------------------------------------------------------


def _disk_completions(order):
    env = Environment()
    d = Disk(env, DiskSpec())
    log = []
    d.submit(READ, 0, 4 * KiB)  # occupies the head; contenders queue
    for off in order:
        ev = d.submit(READ, off, 256 * KiB)
        ev.callbacks.append(lambda e, off=off: log.append((env._now, off)))
    env.run()
    return log


def test_disk_head_is_issue_order_invariant():
    near_first = _disk_completions([64 * MiB, 512 * MiB])
    far_first = _disk_completions([512 * MiB, 64 * MiB])
    assert near_first == far_first
    assert [off for _, off in near_first] == [64 * MiB, 512 * MiB]


# ---------------------------------------------------------------------------
# pinned fix: analytic ring rebuild preserves arrival stamps and keys
# ---------------------------------------------------------------------------


class _KeyedHold(FastHold):
    __slots__ = ("total", "_q", "label", "log")

    def __init__(self, env, resources, total, quantum, order_key, label, log):
        self.total = total
        self._q = quantum
        self.label = label
        self.log = log
        super().__init__(env, resources, 0, order_key)

    def _start(self, event):
        self._acquire()

    def _granted(self):
        self.log.append((round(self.env._now, 9), self.label))
        self._begin_hold(self.total, self._q)

    def _done(self):
        self.log.append((round(self.env._now, 9), self.label + ":done"))
        self.result.succeed(None)


def _ring_grant_log(analytic_on):
    """Three keyed holds rotate on one resource; a keyed foreign request
    lands mid-slice, dissolving the analytic ring.  The rebuilt queue
    must reproduce the exact rotation's arrival stamps and order keys,
    or the foreign request overtakes the freshly re-queued member."""
    prev = _analytic.ANALYTIC
    _analytic.ANALYTIC = analytic_on
    try:
        env = Environment()
        res = Resource(env, capacity=1)
        log = []
        for key, label, total in (
            (10, "A", 0.203),
            (20, "B", 0.205),
            (30, "C", 0.207),
        ):
            _KeyedHold(env, [res], total, 0.02, key, label, log)

        def arrive(ev):
            req = res.request(order_key=15)

            def got(_):
                log.append((round(env._now, 9), "foreign"))
                Timeout(env, 0.005).callbacks.append(lambda e: res.release(req))

            if req.triggered:
                got(req)
            else:
                req.callbacks.append(got)

        Timeout(env, 0.07).callbacks.append(arrive)
        env.run()
        return log
    finally:
        _analytic.ANALYTIC = prev


def test_ring_rebuild_matches_exact_rotation():
    exact = _ring_grant_log(False)
    assert _ring_grant_log(True) == exact
    # the foreign keyed request queues behind the member that the exact
    # rotation re-admitted first — it must not jump the cohort
    labels = [label for _, label in exact]
    assert labels.index("foreign") > labels.index("C")
