"""End-to-end methodology facade tests on tiny systems."""

import pytest

from repro.core import Methodology
from repro.storage.base import KiB, MiB
from repro.workloads.apps import BTIOApplication, MadBenchApplication
from repro.workloads.btio import BTIOConfig
from repro.workloads.madbench import MadBenchConfig
from conftest import small_config

KW = dict(block_sizes=(64 * KiB, 1 * MiB), char_file_bytes=16 * MiB,
          ior_nprocs=2, ior_file_bytes=8 * MiB)


@pytest.fixture(scope="module")
def methodology():
    m = Methodology({d: small_config(d) for d in ("jbod", "raid5")}, **KW)
    m.characterize()
    return m


def test_requires_configs():
    with pytest.raises(ValueError):
        Methodology({})


def test_characterize_builds_tables_per_config(methodology):
    assert set(methodology.tables) == {"jbod", "raid5"}
    for tables in methodology.tables.values():
        assert set(tables) == {"iolib", "nfs", "localfs"}
        assert all(len(t) > 0 for t in tables.values())


def test_factors_per_config(methodology):
    factors = methodology.factors()
    assert factors["raid5"].server_organization == "raid5"
    assert factors["jbod"].server_organization == "jbod"


def test_evaluate_requires_characterization_first():
    m = Methodology({"jbod": small_config("jbod")}, **KW)
    app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
    with pytest.raises(RuntimeError):
        m.evaluate(app)


def test_evaluate_btio(methodology):
    app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
    reports = methodology.evaluate(app)
    assert set(reports) == {"jbod", "raid5"}
    for rep in reports.values():
        assert rep.execution_time_s > 0
        assert rep.io_time_s > 0
        assert rep.used.rows
        assert rep.profile.measures


def test_evaluate_madbench(methodology):
    app = MadBenchApplication(
        MadBenchConfig(kpix=1, nbin=2, nprocs=2, filetype="shared", path="/nfs/mb", busywork_s=0.01)
    )
    reports = methodology.evaluate(app, names=["jbod"])
    rep = reports["jbod"]
    assert rep.bytes_written > 0 and rep.bytes_read > 0
    assert rep.used.cell("nfs", "write") is not None


def test_recommend_ranks_all_characterized(methodology):
    app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
    reports = methodology.evaluate(app, names=["jbod"])
    ranked = methodology.recommend(reports["jbod"].profile)
    assert len(ranked) == 2
    assert ranked[0].expected_rate_Bps >= ranked[1].expected_rate_Bps


def test_recommend_with_redundancy_filters_jbod(methodology):
    app = BTIOApplication(BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
    reports = methodology.evaluate(app, names=["jbod"])
    ranked = methodology.recommend(reports["jbod"].profile, require_redundancy=True)
    assert [s.name for s in ranked] == ["raid5"]


def test_app_names():
    bt = BTIOApplication(BTIOConfig(clazz="C", nprocs=16, subtype="simple"))
    assert bt.name == "btio-C-16p-simple"
    mb = MadBenchApplication(MadBenchConfig(nprocs=16, filetype="unique"))
    assert mb.name == "madbench-16p-unique"


def test_save_and_load_tables(methodology, tmp_path):
    written = methodology.save_tables(tmp_path)
    assert "jbod_nfs.csv" in written
    assert "raid5_localfs.csv" in written
    assert len(written) == 6  # 2 configs x 3 levels

    fresh = Methodology({d: small_config(d) for d in ("jbod", "raid5")}, **KW)
    assert fresh.tables == {}
    fresh.load_tables(tmp_path)
    assert set(fresh.tables) == {"jbod", "raid5"}
    for tables in fresh.tables.values():
        assert set(tables) == {"iolib", "nfs", "localfs"}
    # loaded tables answer lookups identically
    from repro.storage.base import AccessType

    orig = methodology.tables["jbod"]["nfs"].lookup("write", 1 * MiB, AccessType.GLOBAL)
    back = fresh.tables["jbod"]["nfs"].lookup("write", 1 * MiB, AccessType.GLOBAL)
    assert back == pytest.approx(orig, rel=1e-3)


def test_load_tables_missing_files_partial(methodology, tmp_path):
    # save only, then delete one file: load skips it gracefully
    methodology.save_tables(tmp_path)
    (tmp_path / "jbod_nfs.csv").unlink()
    fresh = Methodology({d: small_config(d) for d in ("jbod", "raid5")}, **KW)
    fresh.load_tables(tmp_path)
    assert "nfs" not in fresh.tables["jbod"]
    assert "nfs" in fresh.tables["raid5"]
