"""Latency/IOPs characterization tests (paper Fig. 2's other metrics)."""

import pytest

from repro.core.latency import characterize_latency, measure_latency_iops
from repro.simengine import Environment
from repro.clusters.builder import build_system
from conftest import small_config


@pytest.fixture(scope="module")
def profiles():
    return characterize_latency(small_config())


def test_all_levels_profiled(profiles):
    assert set(profiles) == {"iolib", "nfs", "localfs"}


def test_latencies_positive_and_sane(profiles):
    for p in profiles.values():
        assert 0 < p.read_latency_s < 1.0
        assert 0 < p.write_latency_s < 1.0
        assert p.read_iops > 1
        assert p.write_iops > 1


def test_network_levels_add_latency_over_local(profiles):
    """An NFS round trip cannot be faster than the local medium it
    ultimately lands on plus the wire."""
    assert profiles["nfs"].read_latency_s > 1e-4  # at least the RTT


def test_local_read_iops_disk_scale(profiles):
    # scattered 4K reads on one spindle: tens to hundreds of IOPs
    assert 20 < profiles["localfs"].read_iops < 5000


def test_render(profiles):
    text = profiles["localfs"].render()
    assert "localfs" in text and "IOPs" in text


def test_measure_on_existing_system():
    system = build_system(Environment(), small_config())
    p = measure_latency_iops(system, "localfs")
    assert p.level == "localfs"
    assert p.read_iops > 0


def test_unknown_level_rejected():
    system = build_system(Environment(), small_config())
    with pytest.raises(ValueError):
        measure_latency_iops(system, "tape")
