"""Trace ingestion: spec -> trace -> spec round trips and replay."""

import pytest

from conftest import small_config
from repro.core import Methodology
from repro.fingerprint import fingerprint, workload_fingerprint
from repro.storage.base import KiB, MiB
from repro.tracing import (
    IOTracer,
    build_report,
    events_to_csv,
    IngestError,
    load_trace,
    load_trace_workload,
    report_to_spec,
    trace_coverage,
    trace_to_spec,
)
from repro.workloads import SyntheticApplication, compile_spec
from repro.workloads.synthetic import SyntheticPhase, SyntheticSpec

KW = dict(block_sizes=(256 * KiB,), char_file_bytes=8 * MiB,
          ior_nprocs=2, ior_file_bytes=8 * MiB)

SHARED = SyntheticSpec(
    phases=(
        SyntheticPhase(op="write", nbytes=64 * KiB, count=8, repetitions=2,
                       collective=True),
        SyntheticPhase(op="read", nbytes=256 * KiB, count=4),
    ),
    nprocs=4,
    path="/nfs/shared.dat",
)

FPP = SyntheticSpec(
    phases=(SyntheticPhase(op="write", nbytes=128 * KiB, count=4),),
    nprocs=4,
    path="/nfs/private.dat",
    per_process_files=True,
)


@pytest.fixture(scope="module")
def methodology():
    m = Methodology({"jbod": small_config("jbod")}, **KW)
    m.characterize()
    return m


def capture(methodology, spec) -> str:
    """Run the spec once and export its portable csv trace."""
    app = SyntheticApplication(spec=spec, label="capture")
    reports = methodology.evaluate(app, keep_events=True)
    r = reports["jbod"]
    tracer = IOTracer(world_size=r.profile.nprocs)
    for e in r.events:
        tracer.record(e.rank, e)
    return events_to_csv(tracer)


class TestRoundTrip:
    def test_shared_spec_fingerprint_exact(self, methodology):
        text = capture(methodology, SHARED)
        back = trace_to_spec(load_trace(text))
        assert fingerprint(back) == fingerprint(SHARED)

    def test_file_per_process_detected(self, methodology):
        text = capture(methodology, FPP)
        back = trace_to_spec(load_trace(text))
        assert back.per_process_files
        assert back.path == FPP.path
        assert fingerprint(back) == fingerprint(FPP)

    def test_coverage_full(self, methodology):
        tracer = load_trace(capture(methodology, SHARED))
        spec = trace_to_spec(tracer)
        assert trace_coverage(tracer, spec) == pytest.approx(1.0)

    def test_replay_reproduces_tables(self, methodology, tmp_path):
        """spec run and re-imported trace run agree byte-for-byte."""
        text = capture(methodology, SHARED)
        f = tmp_path / "capture.csv"
        f.write_text(text)
        app = load_trace_workload(f)
        assert app.name == "trace-capture"
        native = methodology.evaluate(SyntheticApplication(spec=SHARED))["jbod"]
        replayed = methodology.evaluate(app)["jbod"]
        assert replayed.used.rows == native.used.rows
        assert replayed.io_time_s == native.io_time_s
        assert replayed.execution_time_s == native.execution_time_s
        assert replayed.bytes_written == native.bytes_written

    def test_replay_deterministic_across_repeats(self, methodology, tmp_path):
        text = capture(methodology, SHARED)
        f = tmp_path / "capture.csv"
        f.write_text(text)
        a = methodology.evaluate(load_trace_workload(f))["jbod"]
        b = methodology.evaluate(load_trace_workload(f))["jbod"]
        assert a.used.rows == b.used.rows
        assert a.io_time_s == b.io_time_s

    def test_workload_fingerprints_dedupe(self, methodology, tmp_path):
        # a spec file and its re-imported capture hash identically, so
        # dedupe layers see one workload
        text = capture(methodology, SHARED)
        f = tmp_path / "capture.csv"
        f.write_text(text)
        app = load_trace_workload(f)
        assert workload_fingerprint(app) == workload_fingerprint(
            SyntheticApplication(spec=SHARED, label="other-name"))


class TestTraceToSpec:
    def test_empty_trace_rejected(self):
        with pytest.raises(IngestError, match="no read/write events"):
            trace_to_spec(IOTracer())

    def test_malformed_text_rejected(self):
        with pytest.raises(IngestError, match="malformed trace"):
            load_trace("rank,op\nnot-an-int,write\n")

    def test_dominant_file_kept(self):
        from repro.tracing import IOEvent

        t = IOTracer(world_size=2)
        big = IOEvent(0, "write", 0, 1 * MiB, 4, None, 0.0, 1.0, "/nfs/big", False)
        small = IOEvent(1, "write", 0, 4096, 1, None, 0.0, 0.1, "/nfs/small", False)
        t.record(0, big)
        t.record(1, small)
        spec = trace_to_spec(t)
        assert spec.path == "/nfs/big"
        assert trace_coverage(t, spec) == pytest.approx((4 * MiB) / (4 * MiB + 4096))

    def test_overlapping_offsets_not_rank_disjoint(self):
        from repro.tracing import IOEvent

        t = IOTracer(world_size=2)
        for rank in (0, 1):  # both ranks read the same region
            t.record(rank, IOEvent(rank, "read", 0, 4096, 2, None,
                                   0.0, 0.5, "/nfs/f", False))
        assert not trace_to_spec(t).rank_disjoint

    def test_infer_compute_gaps(self):
        from repro.tracing import IOEvent

        t = IOTracer(world_size=1)
        t.record(0, IOEvent(0, "write", 0, 4096, 1, None, 0.0, 1.0, "/f", False))
        t.record(0, IOEvent(0, "write", 4096, 4096, 1, None, 3.0, 4.0, "/f", False))
        assert trace_to_spec(t).phases[0].compute_s == 0.0
        spec = trace_to_spec(t, infer_compute=True)
        assert spec.phases[0].compute_s == pytest.approx(2.0)


class TestReportToSpec:
    def test_representative_spec(self, methodology):
        tracer = load_trace(capture(methodology, SHARED))
        spec = report_to_spec(build_report(tracer))
        assert spec.nprocs == 4
        assert spec.path == "/nfs/shared.dat"
        ops = {p.op for p in spec.phases}
        assert ops == {"write", "read"}
        for p in spec.phases:
            assert p.nbytes > 0 and p.repetitions >= 1

    def test_empty_report_rejected(self):
        with pytest.raises(IngestError, match="no file records"):
            report_to_spec(build_report(IOTracer()))

    def test_compiles_and_runs(self, methodology):
        tracer = load_trace(capture(methodology, SHARED))
        spec = report_to_spec(build_report(tracer))
        app = SyntheticApplication(spec=spec, label="representative")
        reports = methodology.evaluate(app)
        assert reports["jbod"].io_time_s > 0


class TestCacheDedupe:
    def test_second_evaluation_hits_table_cache(self, tmp_path):
        from repro.core.tablecache import TableCache

        cache = TableCache(tmp_path / "cache")
        m1 = Methodology({"jbod": small_config("jbod")}, **KW)
        m1.characterize(cache=cache)
        entries = cache.entries()
        assert len(entries) == 1
        # identical config + sweep fingerprints to the same key, so the
        # second characterization loads the entry instead of adding one
        m2 = Methodology({"jbod": small_config("jbod")}, **KW)
        m2.characterize(cache=cache)
        assert cache.entries() == entries
        csvs = lambda m: {lvl: t.to_csv() for lvl, t in m.tables["jbod"].items()}
        assert csvs(m1) == csvs(m2)
        app = SyntheticApplication(spec=compile_spec(
            {"version": 1, "phases": [{"op": "write", "nbytes": "64KiB"}]}))
        a = m1.evaluate(app)["jbod"]
        b = m2.evaluate(app)["jbod"]
        assert a.used.rows == b.used.rows
