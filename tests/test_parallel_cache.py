"""Parallel fan-out determinism and the persistent characterization cache.

The acceptance bar for the parallel engine is *bit-identical* output:
the CSV serialization of every performance table must match between a
serial run, a multi-process run, and a warm cache load.  Block sweeps
here are tiny so the whole file stays fast.
"""

import pytest

from repro.clusters import aohyper_config
from repro.core import Methodology, TableCache, resolve_jobs, run_tasks
from repro.core.parallel import resolve_jobs as resolve_jobs_direct
from repro.fingerprint import fingerprint
from repro.storage.base import KiB, MiB
from repro.workloads.apps import MadBenchApplication
from repro.workloads.madbench import MadBenchConfig

SMALL_SWEEP = dict(
    block_sizes=(256 * KiB, 1 * MiB),
    char_file_bytes=8 * MiB,
    ior_file_bytes=64 * MiB,
)


def small_methodology(names=("jbod",)):
    return Methodology({n: aohyper_config(n) for n in names}, **SMALL_SWEEP)


def table_csvs(m: Methodology) -> dict:
    return {
        name: {level: t.to_csv() for level, t in tables.items()}
        for name, tables in m.tables.items()
    }


# ----------------------------------------------------------------------
# job-count resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1


def test_resolve_jobs_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3


def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(2) == 2


def test_resolve_jobs_zero_means_all_cpus(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_negative_and_garbage(monkeypatch):
    with pytest.raises(ValueError):
        resolve_jobs(-1)
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        resolve_jobs_direct()


def _square(x):  # module-level so it pickles into workers
    return x * x


def test_run_tasks_preserves_input_order():
    items = list(range(8))
    assert run_tasks(_square, items, n_jobs=1) == [x * x for x in items]
    assert run_tasks(_square, items, n_jobs=2) == [x * x for x in items]


def test_run_tasks_propagates_worker_exception():
    def boom(_x):
        raise RuntimeError("worker failed")

    with pytest.raises(RuntimeError):
        run_tasks(boom, [1], n_jobs=1)


# ----------------------------------------------------------------------
# parallel characterization/evaluation determinism
# ----------------------------------------------------------------------
def test_parallel_characterize_bit_identical_to_serial():
    serial = small_methodology()
    serial.characterize(n_jobs=1)
    parallel = small_methodology()
    parallel.characterize(n_jobs=2)
    assert table_csvs(serial) == table_csvs(parallel)


def test_parallel_evaluate_matches_serial():
    m = small_methodology(("jbod", "raid1"))
    m.characterize()
    app = MadBenchApplication(MadBenchConfig(kpix=2, nprocs=4))
    serial = m.evaluate(app, n_jobs=1)
    parallel = m.evaluate(app, n_jobs=2)
    assert list(serial) == list(parallel)
    for name in serial:
        a, b = serial[name], parallel[name]
        assert a.execution_time_s == b.execution_time_s
        assert a.io_time_s == b.io_time_s
        assert a.bytes_written == b.bytes_written
        assert a.bytes_read == b.bytes_read
        assert [
            (r.level, r.op, r.block_bytes, r.app_rate_Bps, r.characterized_Bps)
            for r in a.used.rows
        ] == [
            (r.level, r.op, r.block_bytes, r.app_rate_Bps, r.characterized_Bps)
            for r in b.used.rows
        ]


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_stable_across_calls():
    cfg = aohyper_config("jbod")
    assert cfg.fingerprint() == aohyper_config("jbod").fingerprint()


def test_fingerprint_distinguishes_configs_and_sweeps():
    jbod, raid5 = aohyper_config("jbod"), aohyper_config("raid5")
    assert jbod.fingerprint() != raid5.fingerprint()
    assert fingerprint(jbod, {"blocks": (1, 2)}) != fingerprint(jbod, {"blocks": (1, 4)})


def test_fingerprint_of_plain_values():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
    assert fingerprint([1, 2]) != fingerprint([2, 1])


# ----------------------------------------------------------------------
# cache round trips
# ----------------------------------------------------------------------
def test_cache_round_trip_identical_tables_and_reports(tmp_path):
    cache = TableCache(tmp_path)
    cold = small_methodology()
    cold.characterize(cache=cache)
    assert len(cache.entries()) == 1

    warm = small_methodology()
    warm.characterize(cache=cache)
    assert table_csvs(cold) == table_csvs(warm)

    app = MadBenchApplication(MadBenchConfig(kpix=2, nprocs=4))
    rc, rw = cold.evaluate(app)["jbod"], warm.evaluate(app)["jbod"]
    assert rc.execution_time_s == rw.execution_time_s
    assert rc.io_time_s == rw.io_time_s
    assert [
        (r.level, r.op, r.block_bytes, r.app_rate_Bps, r.characterized_Bps)
        for r in rc.used.rows
    ] == [
        (r.level, r.op, r.block_bytes, r.app_rate_Bps, r.characterized_Bps)
        for r in rw.used.rows
    ]


def test_cache_warm_load_is_fast(tmp_path):
    import time

    cache = TableCache(tmp_path)
    small_methodology().characterize(cache=cache)
    warm = small_methodology()
    t0 = time.perf_counter()
    warm.characterize(cache=cache)
    assert time.perf_counter() - t0 < 1.0
    assert set(warm.tables["jbod"]) == set(warm.levels)


def test_cache_accepts_directory_path(tmp_path):
    m = small_methodology()
    m.characterize(cache=str(tmp_path))
    assert any(tmp_path.iterdir())


def test_cache_miss_on_different_sweep(tmp_path):
    cache = TableCache(tmp_path)
    small_methodology().characterize(cache=cache)
    other = Methodology(
        {"jbod": aohyper_config("jbod")},
        block_sizes=(512 * KiB,),
        char_file_bytes=8 * MiB,
        ior_file_bytes=64 * MiB,
    )
    other.characterize(cache=cache)
    assert len(cache.entries()) == 2


def test_cache_partial_entry_is_a_miss(tmp_path):
    cache = TableCache(tmp_path)
    m = small_methodology()
    m.characterize(cache=cache)
    key = m.cache_key("jbod", cache)
    # Drop one level's file: the whole entry must be treated as a miss.
    (cache.entry_dir(key) / "jbod_nfs.csv").unlink()
    assert cache.load(key, "jbod", m.levels) is None
    again = small_methodology()
    again.characterize(cache=cache)
    assert table_csvs(again) == table_csvs(m)


def test_cache_refresh_recomputes(tmp_path):
    cache = TableCache(tmp_path)
    m = small_methodology()
    m.characterize(cache=cache)
    key = m.cache_key("jbod", cache)
    poisoned = cache.entry_dir(key) / "jbod_localfs.csv"
    poisoned.write_text("op,block_bytes,access,mode,rate_Bps\n")
    fresh = small_methodology()
    fresh.characterize(cache=cache, refresh=True)
    assert table_csvs(fresh) == table_csvs(m)
    assert poisoned.read_text() != "op,block_bytes,access,mode,rate_Bps\n"


def test_cache_invalidate(tmp_path):
    cache = TableCache(tmp_path)
    m = small_methodology(("jbod", "raid1"))
    m.characterize(cache=cache)
    keys = cache.entries()
    assert len(keys) == 2
    assert cache.invalidate(keys[0]) == 1
    assert cache.invalidate("no-such-key") == 0
    assert cache.invalidate() == 1
    assert cache.entries() == []


def test_save_load_tables_round_trip(tmp_path):
    """The legacy save/load path produces identical evaluation reports."""
    m = small_methodology()
    m.characterize()
    m.save_tables(tmp_path)
    loaded = small_methodology()
    loaded.load_tables(tmp_path)
    app = MadBenchApplication(MadBenchConfig(kpix=2, nprocs=4))
    a = m.evaluate(app)["jbod"]
    b = loaded.evaluate(app)["jbod"]
    assert a.io_time_s == b.io_time_s
    assert [
        (r.level, r.op, r.used_pct) for r in a.used.rows
    ] == [
        (r.level, r.op, r.used_pct) for r in b.used.rows
    ]


# ----------------------------------------------------------------------
# simengine fast-path equivalence
# ----------------------------------------------------------------------
def test_characterization_identical_with_fastpath_disabled(monkeypatch):
    """The quantum-coalescing fast path must not change any table."""
    from repro.simengine import resources

    fast = small_methodology()
    fast.characterize()
    monkeypatch.setattr(resources, "QUANTUM_COALESCE", False)
    slow = small_methodology()
    slow.characterize()
    assert table_csvs(fast) == table_csvs(slow)


# ----------------------------------------------------------------------
# worker-crash recovery
# ----------------------------------------------------------------------
_PARENT_PID = __import__("os").getpid()


def _fail_in_worker(x):
    """Raises in every pool worker, succeeds in the parent process."""
    import os

    if os.getpid() != _PARENT_PID:
        raise RuntimeError("injected worker crash")
    return x * x


def _always_boom(_x):
    raise RuntimeError("genuine failure")


def _crashy_characterize(task):
    import os

    if os.getpid() != _PARENT_PID:
        raise RuntimeError("injected worker crash")
    return _ORIG_CHARACTERIZE(task)


from repro.core.methodology import _characterize_unit as _ORIG_CHARACTERIZE  # noqa: E402


def test_run_tasks_crash_retries_then_serial_fallback(caplog, monkeypatch):
    import logging

    import repro.core.parallel as par

    monkeypatch.setattr(par, "RETRY_BACKOFF_S", 0.01)
    with caplog.at_level(logging.WARNING, logger="repro.core.parallel"):
        out = run_tasks(_fail_in_worker, list(range(6)), n_jobs=2)
    assert out == [x * x for x in range(6)]
    assert "retrying" in caplog.text
    assert "serial fallback" in caplog.text


def test_run_tasks_genuine_error_raises_from_serial_fallback(monkeypatch):
    import repro.core.parallel as par

    monkeypatch.setattr(par, "RETRY_BACKOFF_S", 0.01)
    with pytest.raises(RuntimeError, match="genuine failure"):
        run_tasks(_always_boom, [1, 2], n_jobs=2)


def test_characterize_bit_identical_after_worker_crashes(monkeypatch):
    """Crashed characterization shards must recompute to the exact same
    tables via the retry/serial-fallback path."""
    import repro.core.methodology as meth_mod
    import repro.core.parallel as par

    monkeypatch.setattr(par, "RETRY_BACKOFF_S", 0.01)
    baseline = small_methodology()
    baseline.characterize(n_jobs=1)
    crashy = small_methodology()
    monkeypatch.setattr(meth_mod, "_characterize_unit", _crashy_characterize)
    crashy.characterize(n_jobs=2)
    assert table_csvs(crashy) == table_csvs(baseline)


# ----------------------------------------------------------------------
# corrupt cache entries
# ----------------------------------------------------------------------
def test_cache_quarantines_corrupt_entry_and_recomputes(tmp_path, caplog):
    import logging

    cache = TableCache(tmp_path)
    m = small_methodology()
    m.characterize(cache=cache)
    key = m.cache_key("jbod", cache)
    victim = cache.entry_dir(key) / "jbod_localfs.csv"
    victim.write_text(
        "op,block_bytes,access,mode,rate_Bps\nread,notanumber,global,buffered,1\n"
    )
    with caplog.at_level(logging.WARNING, logger="repro.core.tablecache"):
        assert cache.load(key, "jbod", m.levels) is None
    assert "quarantined" in caplog.text
    # the corrupt entry moved aside and no longer counts as cached
    assert any(".corrupt" in p.name for p in tmp_path.iterdir())
    assert key not in cache.entries()
    # recharacterization recomputes bit-identical tables into a fresh entry
    fresh = small_methodology()
    fresh.characterize(cache=cache)
    assert table_csvs(fresh) == table_csvs(m)
    assert key in cache.entries()


def test_cache_quarantine_numbers_duplicate_destinations(tmp_path):
    cache = TableCache(tmp_path)
    for _ in range(2):
        m = small_methodology()
        m.characterize(cache=cache)
        key = m.cache_key("jbod", cache)
        bad = cache.entry_dir(key) / "jbod_localfs.csv"
        bad.write_text("op,block_bytes,access,mode,rate_Bps\nread,x,global,buffered,1\n")
        assert cache.load(key, "jbod", m.levels) is None
    corrupt = [p.name for p in tmp_path.iterdir() if ".corrupt" in p.name]
    assert len(corrupt) == 2


def test_cache_quarantine_race_entry_already_moved(tmp_path, caplog):
    """A peer process that quarantined the same corrupt entry first must
    not make the loser raise — the rename finds nothing and the caller
    just recomputes."""
    import logging

    cache = TableCache(tmp_path)
    m = small_methodology()
    m.characterize(cache=cache)
    key = m.cache_key("jbod", cache)
    entry = cache.entry_dir(key)
    bad = entry / "jbod_localfs.csv"
    bad.write_text("op,block_bytes,access,mode,rate_Bps\nread,x,global,buffered,1\n")
    corrupt_text = bad.read_text()

    import os

    orig_replace = os.replace

    def racing_replace(src, dst):
        # The peer wins the race between our corruption check and rename.
        if str(src) == str(entry):
            orig_replace(entry, entry.with_name(entry.name + ".corrupt"))
        return orig_replace(src, dst)

    with caplog.at_level(logging.WARNING, logger="repro.core.tablecache"):
        import repro.core.tablecache as tc

        saved = tc.os.replace
        tc.os.replace = racing_replace
        try:
            assert cache.load(key, "jbod", m.levels) is None
        finally:
            tc.os.replace = saved
    assert "already quarantined" in caplog.text
    # exactly one quarantined copy exists — the peer's
    moved = [p for p in tmp_path.iterdir() if ".corrupt" in p.name]
    assert len(moved) == 1
    assert (moved[0] / "jbod_localfs.csv").read_text() == corrupt_text


def test_cache_quarantine_race_destination_taken(tmp_path, monkeypatch):
    """If a peer claims the chosen ``.corrupt`` name between the exists
    probe and the rename, quarantine retries the next numbered name."""
    cache = TableCache(tmp_path)
    m = small_methodology()
    m.characterize(cache=cache)
    key = m.cache_key("jbod", cache)
    entry = cache.entry_dir(key)
    (entry / "jbod_localfs.csv").write_text(
        "op,block_bytes,access,mode,rate_Bps\nread,x,global,buffered,1\n"
    )

    import os

    orig_replace = os.replace
    collided = []

    def colliding_replace(src, dst):
        if str(src) == str(entry) and not collided:
            collided.append(dst)
            raise OSError(39, "Directory not empty", str(dst))
        return orig_replace(src, dst)

    import repro.core.tablecache as tc

    monkeypatch.setattr(tc.os, "replace", colliding_replace)
    assert cache.load(key, "jbod", m.levels) is None
    assert collided, "injected collision never hit"
    # the entry still got quarantined, under the next numbered name
    moved = [p.name for p in tmp_path.iterdir() if ".corrupt" in p.name]
    assert moved == [f"{key}.corrupt.1"]


def test_serial_fallback_chains_original_shard_traceback(monkeypatch):
    """When the serial fallback fails too, the original parallel-shard
    exception must ride along as ``__cause__``."""
    import repro.core.parallel as par

    monkeypatch.setattr(par, "RETRY_BACKOFF_S", 0.01)
    with pytest.raises(RuntimeError, match="genuine failure") as excinfo:
        run_tasks(_always_boom, [1, 2], n_jobs=2)
    cause = excinfo.value.__cause__
    assert isinstance(cause, RuntimeError)
    assert "genuine failure" in str(cause)
    # and the chained copy is the *pool's* instance, not the serial one
    assert cause is not excinfo.value
