"""Darshan-style summary and trace round-trip tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tracing import IOEvent, IOTracer, build_report, events_from_csv, events_to_csv


def ev(rank=0, op="write", offset=0, nbytes=1024, count=1, stride=None,
       t0=0.0, t1=1.0, path="/f", collective=False):
    return IOEvent(rank, op, offset, nbytes, count, stride, t0, t1, path, collective)


def make_tracer():
    t = IOTracer()
    t.record(0, ev(rank=0, op="write", nbytes=1 << 20, count=4, collective=True))
    t.record(1, ev(rank=1, op="write", nbytes=1 << 20, count=4, collective=True, path="/f"))
    t.record(0, ev(rank=0, op="read", nbytes=512, count=100, stride=2048, t0=1, t1=2))
    t.record(1, ev(rank=1, op="write", nbytes=4096, path="/g", t0=2, t1=3))
    return t


class TestReport:
    def test_per_file_records(self):
        rep = build_report(make_tracer())
        assert set(rep.files) == {"/f", "/g"}
        f = rep.files["/f"]
        assert f.shared
        assert f.writes == 8
        assert f.bytes_written == 8 << 20
        assert f.reads == 100
        g = rep.files["/g"]
        assert not g.shared
        assert g.writes == 1

    def test_collective_split(self):
        rep = build_report(make_tracer())
        f = rep.files["/f"]
        assert f.collective_ops == 8
        assert f.independent_ops == 100

    def test_size_histogram_buckets(self):
        rep = build_report(make_tracer())
        f = rep.files["/f"]
        assert f.size_histogram.get("100-1K") == 100  # the 512-byte reads
        assert f.size_histogram.get("1M-4M") == 8
        assert f.dominant_bucket == "100-1K"

    def test_totals(self):
        rep = build_report(make_tracer())
        assert rep.total_bytes == (8 << 20) + 512 * 100 + 4096
        assert rep.shared_files == ["/f"]
        assert rep.nranks == 2

    def test_render(self):
        text = build_report(make_tracer()).render()
        assert "/f" in text and "shared" in text
        assert "/g" in text and "unique" in text

    def test_empty(self):
        rep = build_report(IOTracer())
        assert rep.files == {}
        assert rep.total_bytes == 0


class TestCsvRoundTrip:
    def test_exact_round_trip(self):
        t = make_tracer()
        back = events_from_csv(events_to_csv(t))
        assert len(back.events) == len(t.events)
        for a, b in zip(t.events, back.events):
            assert a == b  # frozen dataclass equality, exact floats via repr

    def test_header(self):
        meta, header = events_to_csv(IOTracer()).splitlines()[:2]
        assert meta.startswith("#repro-trace v1 world_size=")
        assert header.startswith("rank,op,offset,nbytes,count,stride")

    def test_headerless_capture_still_parses(self):
        # pre-metadata trace files (no #repro-trace line) stay loadable
        text = events_to_csv(make_tracer())
        headerless = "".join(
            line for line in text.splitlines(keepends=True) if not line.startswith("#")
        )
        back = events_from_csv(headerless)
        assert len(back.events) == len(make_tracer().events)
        assert back.world_size is None

    def test_round_trip_preserves_queries(self):
        t = make_tracer()
        back = events_from_csv(events_to_csv(t))
        assert back.count_ops("write") == t.count_ops("write")
        assert back.io_time() == t.io_time()
        assert back.nranks == t.nranks


# any printable path including CSV-hostile characters: separators,
# quotes, comment markers, embedded newlines, non-ASCII
_paths = st.text(
    alphabet=st.sampled_from(list('abz/._-,"\'# \né')), min_size=1, max_size=30
)
_events = st.builds(
    IOEvent,
    rank=st.integers(0, 63),
    op=st.sampled_from(["read", "write", "open", "close"]),
    offset=st.integers(0, 1 << 40),
    nbytes=st.integers(0, 1 << 30),
    count=st.integers(1, 1 << 16),
    stride=st.none() | st.integers(0, 1 << 30),
    t_start=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
    t_end=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
    path=_paths,
    collective=st.booleans(),
)


class TestCsvProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(_events, max_size=20), st.none() | st.integers(1, 128))
    def test_round_trip_exact(self, events, world_size):
        t = IOTracer(world_size=world_size)
        for e in events:
            t.record(e.rank, e)
        back = events_from_csv(events_to_csv(t))
        # frozen-dataclass equality: paths verbatim, floats repr-exact,
        # stride=None distinguished from stride=0
        assert back.events == t.events
        assert back.nranks == t.nranks

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_events, max_size=10))
    def test_double_round_trip_stable(self, events):
        t = IOTracer()
        for e in events:
            t.record(e.rank, e)
        once = events_to_csv(events_from_csv(events_to_csv(t)))
        assert once == events_to_csv(t)


class TestAccountingRegressions:
    def test_strided_extent_uses_stride_spacing(self):
        # last of `count` transfers starts at offset + (count-1)*stride;
        # the old count*nbytes extent underestimated sparse strided files
        t = IOTracer()
        t.record(0, ev(offset=1000, nbytes=512, count=100, stride=2048))
        rec = build_report(t).files["/f"]
        assert rec.max_offset == 1000 + 99 * 2048 + 512

    def test_contiguous_extent_unchanged(self):
        t = IOTracer()
        t.record(0, ev(offset=1000, nbytes=512, count=100, stride=None))
        rec = build_report(t).files["/f"]
        assert rec.max_offset == 1000 + 100 * 512

    def test_idle_ranks_count_in_nranks(self):
        # a 4-rank world where only rank 0 does I/O: the declared world
        # size must win over the count of ranks with events
        t = IOTracer(world_size=4)
        t.record(0, ev(rank=0, t0=0.0, t1=2.0))
        assert t.nranks == 4
        assert t.io_time() == pytest.approx(0.5)  # 2s over 4 ranks, not 1

    def test_world_size_survives_csv_round_trip(self):
        t = IOTracer(world_size=8)
        t.record(0, ev(rank=0))
        back = events_from_csv(events_to_csv(t))
        assert back.nranks == 8
        assert build_report(back).nranks == 8

    def test_set_world_size_keeps_largest(self):
        t = IOTracer()
        t.set_world_size(4)
        t.set_world_size(2)
        assert t.nranks == 4

    def test_render_shows_sub_mib_sizes(self):
        # the old `bytes >> 20` truncated 4096B to "0 MiB"
        t = IOTracer()
        t.record(0, ev(nbytes=4096, count=1))
        text = build_report(t).render()
        assert "4.0KiB" in text
        assert "0MiB" not in text and "(0)" not in text
