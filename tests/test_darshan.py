"""Darshan-style summary and trace round-trip tests."""

import pytest

from repro.tracing import IOEvent, IOTracer, build_report, events_from_csv, events_to_csv


def ev(rank=0, op="write", offset=0, nbytes=1024, count=1, stride=None,
       t0=0.0, t1=1.0, path="/f", collective=False):
    return IOEvent(rank, op, offset, nbytes, count, stride, t0, t1, path, collective)


def make_tracer():
    t = IOTracer()
    t.record(0, ev(rank=0, op="write", nbytes=1 << 20, count=4, collective=True))
    t.record(1, ev(rank=1, op="write", nbytes=1 << 20, count=4, collective=True, path="/f"))
    t.record(0, ev(rank=0, op="read", nbytes=512, count=100, stride=2048, t0=1, t1=2))
    t.record(1, ev(rank=1, op="write", nbytes=4096, path="/g", t0=2, t1=3))
    return t


class TestReport:
    def test_per_file_records(self):
        rep = build_report(make_tracer())
        assert set(rep.files) == {"/f", "/g"}
        f = rep.files["/f"]
        assert f.shared
        assert f.writes == 8
        assert f.bytes_written == 8 << 20
        assert f.reads == 100
        g = rep.files["/g"]
        assert not g.shared
        assert g.writes == 1

    def test_collective_split(self):
        rep = build_report(make_tracer())
        f = rep.files["/f"]
        assert f.collective_ops == 8
        assert f.independent_ops == 100

    def test_size_histogram_buckets(self):
        rep = build_report(make_tracer())
        f = rep.files["/f"]
        assert f.size_histogram.get("100-1K") == 100  # the 512-byte reads
        assert f.size_histogram.get("1M-4M") == 8
        assert f.dominant_bucket == "100-1K"

    def test_totals(self):
        rep = build_report(make_tracer())
        assert rep.total_bytes == (8 << 20) + 512 * 100 + 4096
        assert rep.shared_files == ["/f"]
        assert rep.nranks == 2

    def test_render(self):
        text = build_report(make_tracer()).render()
        assert "/f" in text and "shared" in text
        assert "/g" in text and "unique" in text

    def test_empty(self):
        rep = build_report(IOTracer())
        assert rep.files == {}
        assert rep.total_bytes == 0


class TestCsvRoundTrip:
    def test_exact_round_trip(self):
        t = make_tracer()
        back = events_from_csv(events_to_csv(t))
        assert len(back.events) == len(t.events)
        for a, b in zip(t.events, back.events):
            assert a == b  # frozen dataclass equality, exact floats via repr

    def test_header(self):
        line = events_to_csv(IOTracer()).splitlines()[0]
        assert line.startswith("rank,op,offset,nbytes,count,stride")

    def test_round_trip_preserves_queries(self):
        t = make_tracer()
        back = events_from_csv(events_to_csv(t))
        assert back.count_ops("write") == t.count_ops("write")
        assert back.io_time() == t.io_time()
        assert back.nranks == t.nranks
