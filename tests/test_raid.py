"""RAID array tests: level semantics, caching, parity penalties."""

import pytest

from repro.simengine import Environment
from repro.hardware.disk import DiskSpec
from repro.hardware.raid import RAIDArray, RAIDConfig, RAIDLevel
from repro.storage.base import KiB, MiB


def make(env, level, ndisks, write_back=False, **kw):
    return RAIDArray(env, RAIDConfig(level=level, ndisks=ndisks, write_back=write_back, **kw))


def rate_of(level, ndisks, op, nbytes=1 * MiB, count=256, **kw):
    env = Environment()
    arr = make(env, level, ndisks, **kw)
    env.run(arr.submit(op, 0, nbytes, count=count))
    if kw.get("write_back"):
        env.run(arr.flush())
    return nbytes * count / env.now


class TestConfigValidation:
    def test_min_disk_counts(self):
        for level, n in ((RAIDLevel.RAID1, 1), (RAIDLevel.RAID5, 2), (RAIDLevel.RAID6, 3), (RAIDLevel.RAID10, 2)):
            with pytest.raises(ValueError):
                RAIDConfig(level=level, ndisks=n)

    def test_raid10_even_disks(self):
        with pytest.raises(ValueError):
            RAIDConfig(level=RAIDLevel.RAID10, ndisks=5)

    def test_capacity(self):
        d = DiskSpec()
        assert RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, disk=d).capacity_bytes == d.capacity_bytes
        assert RAIDConfig(level=RAIDLevel.RAID1, ndisks=2, disk=d).capacity_bytes == d.capacity_bytes
        assert RAIDConfig(level=RAIDLevel.RAID5, ndisks=5, disk=d).capacity_bytes == 4 * d.capacity_bytes
        assert RAIDConfig(level=RAIDLevel.RAID6, ndisks=6, disk=d).capacity_bytes == 4 * d.capacity_bytes
        assert RAIDConfig(level=RAIDLevel.RAID10, ndisks=4, disk=d).capacity_bytes == 2 * d.capacity_bytes

    def test_data_disks(self):
        assert RAIDConfig(level=RAIDLevel.RAID5, ndisks=5).data_disks == 4
        assert RAIDConfig(level=RAIDLevel.RAID1, ndisks=2).data_disks == 1


class TestThroughputShapes:
    def test_raid0_read_scales_with_members(self):
        single = rate_of(RAIDLevel.JBOD, 1, "read")
        striped = rate_of(RAIDLevel.RAID0, 4, "read")
        assert striped > 3.0 * single

    def test_raid1_read_faster_than_single(self):
        single = rate_of(RAIDLevel.JBOD, 1, "read")
        mirrored = rate_of(RAIDLevel.RAID1, 2, "read")
        assert mirrored > 1.5 * single

    def test_raid1_write_not_faster_than_single(self):
        single = rate_of(RAIDLevel.JBOD, 1, "write")
        mirrored = rate_of(RAIDLevel.RAID1, 2, "write")
        assert mirrored <= 1.05 * single

    def test_raid5_read_approx_n_minus_1(self):
        single = rate_of(RAIDLevel.JBOD, 1, "read")
        r5 = rate_of(RAIDLevel.RAID5, 5, "read")
        assert 3.0 * single < r5 < 4.5 * single

    def test_raid5_full_stripe_write_parallel(self):
        single = rate_of(RAIDLevel.JBOD, 1, "write")
        r5 = rate_of(RAIDLevel.RAID5, 5, "write")
        assert r5 > 1.5 * single

    def test_raid5_small_write_penalty(self):
        """Scattered sub-stripe writes cost 4 member ops each: RAID5 loses
        most of its 5-way parallelism versus a same-width RAID0."""
        env0 = Environment()
        r0 = make(env0, RAIDLevel.RAID0, 5)
        env0.run(r0.submit("write", 0, 4 * KiB, count=200, stride=16 * MiB))
        env2 = Environment()
        r5 = make(env2, RAIDLevel.RAID5, 5)
        env2.run(r5.submit("write", 0, 4 * KiB, count=200, stride=16 * MiB))
        r0_iops = 200 / env0.now
        r5_iops = 200 / env2.now
        assert r5_iops < 0.4 * r0_iops  # the classic 4x RMW penalty

    def test_raid6_small_write_worse_than_raid5(self):
        env1 = Environment()
        r5 = make(env1, RAIDLevel.RAID5, 6)
        env1.run(r5.submit("write", 0, 4 * KiB, count=100, stride=16 * MiB))
        env2 = Environment()
        r6 = make(env2, RAIDLevel.RAID6, 6)
        env2.run(r6.submit("write", 0, 4 * KiB, count=100, stride=16 * MiB))
        assert env2.now > env1.now

    def test_raid10_write_faster_than_raid1(self):
        r1 = rate_of(RAIDLevel.RAID1, 2, "write")
        r10 = rate_of(RAIDLevel.RAID10, 4, "write")
        assert r10 > 1.4 * r1

    def test_sparse_reads_distribute_over_members(self):
        env1 = Environment()
        jbod = make(env1, RAIDLevel.JBOD, 1)
        env1.run(jbod.submit("read", 0, 4 * KiB, count=400, stride=16 * MiB))
        env2 = Environment()
        r5 = make(env2, RAIDLevel.RAID5, 5)
        env2.run(r5.submit("read", 0, 4 * KiB, count=400, stride=16 * MiB))
        assert env2.now < env1.now  # parallel seeks across spindles


class TestWriteBackCache:
    def test_burst_absorbed_at_bus_speed(self):
        env = Environment()
        arr = make(env, RAIDLevel.JBOD, 1, write_back=True)
        env.run(arr.submit("write", 0, 1 * MiB, count=16))
        burst_rate = 16 * MiB / env.now
        assert burst_rate > 1.5 * arr.config.disk.outer_rate_Bps

    def test_flush_event_drains_dirty(self):
        env = Environment()
        arr = make(env, RAIDLevel.JBOD, 1, write_back=True)
        env.run(arr.submit("write", 0, 1 * MiB, count=16))
        assert arr.dirty_bytes > 0
        env.run(arr.flush())
        assert arr.dirty_bytes == 0

    def test_sustained_writes_throttled_by_cache(self):
        env = Environment()
        cfg = RAIDConfig(level=RAIDLevel.JBOD, ndisks=1, write_back=True, cache_bytes=8 * MiB)
        arr = RAIDArray(env, cfg)
        env.run(arr.submit("write", 0, 1 * MiB, count=256))
        env.run(arr.flush())
        rate = 256 * MiB / env.now
        assert rate <= 1.1 * cfg.disk.outer_rate_Bps

    def test_cached_false_bypasses_controller_cache(self):
        env = Environment()
        arr = make(env, RAIDLevel.JBOD, 1, write_back=True)
        env.run(arr.submit("write", 0, 1 * MiB, count=16, cached=False))
        assert arr.dirty_bytes == 0


class TestValidation:
    def test_bad_op(self):
        env = Environment()
        arr = make(env, RAIDLevel.JBOD, 1)
        with pytest.raises(ValueError):
            arr.submit("append", 0, 4096)

    def test_bad_geometry(self):
        env = Environment()
        arr = make(env, RAIDLevel.JBOD, 1)
        with pytest.raises(ValueError):
            arr.submit("read", -1, 4096)
        with pytest.raises(ValueError):
            arr.submit("read", 0, 4096, count=0)

    def test_aggregate_stats(self):
        env = Environment()
        arr = make(env, RAIDLevel.RAID1, 2)
        env.run(arr.submit("write", 0, 1 * MiB))
        assert arr.stats.bytes_written == 2 * MiB  # both mirrors
