"""Kernel determinism suite: every speed path is bit-identical.

The simengine optimizations all promise *bit-identical* results — the
FastHold state machines, the coalesced-wake quantum path, the analytic
slice rings and the vectorized disk scatter each claim to insert the
same calendar entries (or compute the same floats) as the code they
replace.  This suite holds them to it by byte-comparing performance
tables and completion clocks across the four kernel modes:

* ``baseline`` — all optimizations on (the shipped default);
* ``no_fasthold`` — ``REPRO_NO_FASTHOLD``: generator serve paths;
* ``no_coalesce`` — ``REPRO_NO_FASTPATH``: one wake per quantum;
* ``no_fsfast`` — ``REPRO_NO_FSFAST``: generator filesystem/MPI-IO
  serve paths instead of the flat state machines;
* ``analytic`` — ``REPRO_ANALYTIC``: slice rings + numpy scatter.

Coverage: the Aohyper characterization tables (iolib/localfs/nfs) for
jbod, raid1 and raid5; all eight iozone workloads plus IOR and BT-IO;
synthetic slice-ring scenarios (plain rotation, a mid-window arrival
that forces a dissolve, pivot at a non-zero member index, and
idle-suffix members) that pin the ring adoption machinery directly;
and synthetic coupled-ring scenarios (two uplinks feeding one pivot,
with mid-window foreign arrivals on either level) that pin the
two-level adoption the same way.
"""

from __future__ import annotations

import contextlib
import functools
import random

import pytest

from repro import aohyper_config, characterize_system
from repro.clusters.builder import build_system
from repro.hardware.disk import Disk, DiskSpec, READ, WRITE
from repro.simengine import Environment
from repro.simengine import analytic as _analytic
from repro.simengine import resources as _kernel
from repro.simengine.bench import _BenchHold
from repro.simengine.core import Timeout
from repro.simengine.resources import Resource
from repro.storage.base import KiB, MiB
from repro.workloads import run_ior, run_iozone
from repro.workloads.btio import BTIOConfig, run_btio
from conftest import small_config

DEVICES = ("jbod", "raid1", "raid5")
ALT_MODES = ("no_fasthold", "no_coalesce", "no_fsfast", "analytic")


@contextlib.contextmanager
def kernel_mode(mode: str):
    """Flip the kernel escape hatches for one run, then restore them."""
    saved = (
        _kernel.FAST_HOLD,
        _kernel.QUANTUM_COALESCE,
        _kernel.FS_FAST,
        _analytic.ANALYTIC,
    )
    try:
        _kernel.FAST_HOLD = mode != "no_fasthold"
        _kernel.QUANTUM_COALESCE = mode != "no_coalesce"
        _kernel.FS_FAST = mode != "no_fsfast"
        _analytic.ANALYTIC = mode == "analytic"
        yield
    finally:
        (
            _kernel.FAST_HOLD,
            _kernel.QUANTUM_COALESCE,
            _kernel.FS_FAST,
            _analytic.ANALYTIC,
        ) = saved


# ----------------------------------------------------------------------
# characterization tables: jbod / raid1 / raid5 in quick mode
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def _characterize_csv(device: str, mode: str) -> str:
    with kernel_mode(mode):
        tables = characterize_system(
            aohyper_config(device),
            block_sizes=(256 * KiB, 1 * MiB),
            file_bytes=8 * MiB,
            ior_nprocs=4,
            ior_file_bytes=64 * MiB,
        )
    return "\n".join(
        f"# {level}\n{tables[level].to_csv()}" for level in sorted(tables)
    )


@pytest.mark.parametrize("mode", ALT_MODES)
@pytest.mark.parametrize("device", DEVICES)
def test_characterization_tables_bit_identical(device, mode):
    reference = _characterize_csv(device, "baseline")
    assert "rate" in reference.lower() or reference  # non-empty tables
    assert _characterize_csv(device, mode) == reference


# ----------------------------------------------------------------------
# the eight iozone workloads + IOR + BT-IO across kernel modes
# ----------------------------------------------------------------------
def _iozone_rows(device: str, mode: str):
    with kernel_mode(mode):
        system = build_system(Environment(), small_config(device))
        res = run_iozone(
            system, "n0", "/local/z", file_bytes=16 * MiB,
            block_sizes=(256 * KiB,), include_strided=True, include_random=True,
        )
    return [(r.test, r.rate_Bps) for r in res.rows]


@pytest.mark.parametrize("mode", ALT_MODES)
@pytest.mark.parametrize("device", DEVICES)
def test_iozone_eight_workloads_bit_identical(device, mode):
    reference = _iozone_rows(device, "baseline")
    assert len({test for test, _ in reference}) == 8
    assert _iozone_rows(device, mode) == reference


def _ior_rows(device: str, mode: str):
    with kernel_mode(mode):
        system = build_system(Environment(), small_config(device, n_compute=2))
        res = run_ior(system, 4, block_sizes=(1 * MiB,), file_bytes=8 * MiB)
    return [(r.op, r.aggregate_rate_Bps, r.elapsed_s) for r in res.rows]


@pytest.mark.parametrize("mode", ALT_MODES)
@pytest.mark.parametrize("device", DEVICES)
def test_ior_bit_identical(device, mode):
    assert _ior_rows(device, mode) == _ior_rows(device, "baseline")


def _btio_times(device: str, mode: str):
    with kernel_mode(mode):
        system = build_system(Environment(), small_config(device, n_compute=2))
        res = run_btio(
            system, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt")
        )
    return (res.execution_time, res.io_time, res.write_time, res.read_time)


@pytest.mark.parametrize("mode", ALT_MODES)
def test_btio_bit_identical(mode):
    assert _btio_times("jbod", mode) == _btio_times("jbod", "baseline")


# ----------------------------------------------------------------------
# synthetic slice-ring scenarios: ring adoption pinned directly
# ----------------------------------------------------------------------
def _build_plain_rotation(env, times):
    """Four holders time-slicing one resource: the canonical ring."""
    res = Resource(env, capacity=1)
    for i in range(4):
        h = _BenchHold(env, [res], 6 * 0.020 + 0.007, 0.020)
        h.result.callbacks.append(lambda ev, i=i: times.append((i, env.now)))


def _build_late_arrival(env, times):
    """A fifth holder arrives mid-window: the ring must dissolve and
    materialize exact FIFO state before the newcomer's request lands."""
    res = Resource(env, capacity=1)
    for i in range(3):
        h = _BenchHold(env, [res], 0.127, 0.020)
        h.result.callbacks.append(lambda ev, i=i: times.append((i, env.now)))

    def late(ev):
        h = _BenchHold(env, [res], 0.053, 0.020)
        h.result.callbacks.append(lambda ev: times.append(("late", env.now)))

    Timeout(env, 0.171).callbacks.append(late)


def _build_prefix_pivot(env, times):
    """Contended resource at member index 1: a held, uncontended prefix
    (capacity 8, never queues) precedes the pivot.  Totals are staggered
    so the post-completion grants (where no rotated-out holder is mid
    re-acquisition) see multi-quantum steady windows and adopt rings."""
    pre = Resource(env, capacity=8)
    piv = Resource(env, capacity=1)
    for i in range(4):
        h = _BenchHold(env, [pre, piv], 0.107 + 0.060 * i, 0.020)
        h.result.callbacks.append(lambda ev, i=i: times.append((i, env.now)))


def _build_idle_suffix(env, times):
    """Pivot at index 0 with a private suffix resource per member —
    queued members sit with the suffix released, so it must be idle."""
    piv = Resource(env, capacity=1)
    for i in range(4):
        suf = Resource(env, capacity=1)
        h = _BenchHold(env, [piv, suf], 0.087, 0.020)
        h.result.callbacks.append(lambda ev, i=i: times.append((i, env.now)))


_RING_SCENARIOS = {
    "plain_rotation": _build_plain_rotation,
    "late_arrival": _build_late_arrival,
    "prefix_pivot": _build_prefix_pivot,
    "idle_suffix": _build_idle_suffix,
}


def _run_ring(builder, mode: str):
    times: list = []
    with kernel_mode(mode):
        env = Environment()
        builder(env, times)
        env.run()
    return times, env._seq


@pytest.mark.parametrize("name", sorted(_RING_SCENARIOS))
def test_ring_scenarios_match_exact(name):
    builder = _RING_SCENARIOS[name]
    ref_times, ref_seq = _run_ring(builder, "baseline")
    assert ref_times, "scenario completed no holders"
    for mode in ("no_coalesce", "analytic"):
        times, seq = _run_ring(builder, mode)
        assert times == ref_times, f"{name}: {mode} diverged from exact DES"
        if mode == "analytic":
            # the ring must actually have formed: analytic runs replace
            # per-quantum calendar entries with one wake per window
            assert seq < ref_seq, f"{name}: analytic mode never adopted a ring"


# ----------------------------------------------------------------------
# synthetic coupled-ring scenarios: two uplinks feeding one pivot
# ----------------------------------------------------------------------
def _build_coupled(env, times, foreign_at=None, foreign_level=None):
    """Four holders on two capacity-1 uplinks all holding one shared
    pivot: the two-level rotation (client uplink x server downlink)
    that defeats the single-pivot criterion.  Starts are staggered so
    the steady window forms mid-rotation; an optional foreign holder
    arrives mid-window on either level and must dissolve the ring."""
    pivot = Resource(env, capacity=1)
    up_a = Resource(env, capacity=1)
    up_c = Resource(env, capacity=1)

    def start(name, res_list, total, at):
        def go(ev):
            h = _BenchHold(env, res_list, total, 0.020)
            h.result.callbacks.append(lambda e, n=name: times.append((n, env.now)))

        if at == 0.0:
            go(None)
        else:
            Timeout(env, at).callbacks.append(go)

    start("A", [up_a, pivot], 0.500, 0.0)
    start("C", [up_c, pivot], 0.450, 0.001)
    start("B", [up_a, pivot], 0.300, 0.002)
    start("D", [up_c, pivot], 0.350, 0.003)
    if foreign_at is not None:
        level = {"pivot": pivot, "uplink_a": up_a, "uplink_c": up_c}[foreign_level]

        def foreign(ev):
            h = _BenchHold(env, [level], 0.040, 0.020)
            h.result.callbacks.append(lambda e: times.append(("foreign", env.now)))

        Timeout(env, foreign_at).callbacks.append(foreign)


_COUPLED_SCENARIOS = {
    "coupled_plain": {},
    "coupled_foreign_pivot": dict(foreign_at=0.137, foreign_level="pivot"),
    "coupled_foreign_uplink_a": dict(foreign_at=0.211, foreign_level="uplink_a"),
    "coupled_foreign_uplink_c": dict(foreign_at=0.093, foreign_level="uplink_c"),
}


def _run_coupled(kwargs, mode: str):
    times: list = []
    with kernel_mode(mode):
        env = Environment()
        _build_coupled(env, times, **kwargs)
        env.run()
    return times, env._seq


@pytest.mark.parametrize("name", sorted(_COUPLED_SCENARIOS))
def test_coupled_ring_scenarios_match_exact(name):
    kwargs = _COUPLED_SCENARIOS[name]
    ref_times, ref_seq = _run_coupled(kwargs, "baseline")
    assert len(ref_times) >= 4, "scenario completed too few holders"
    times, seq = _run_coupled(kwargs, "analytic")
    assert times == ref_times, f"{name}: analytic diverged from exact DES"
    # the coupled ring must actually collapse the calendar: the whole
    # point of the two-level adoption is one wake per window instead of
    # one entry per quantum per member
    assert seq < ref_seq, f"{name}: analytic mode never adopted a coupled ring"


# ----------------------------------------------------------------------
# vectorized disk scatter: scalar loop vs numpy, bit-identical
# ----------------------------------------------------------------------
def test_scatter_vectorization_bit_identical():
    pytest.importorskip("numpy")
    rng = random.Random(7)
    spec = DiskSpec()
    vec_cases = 0
    for trial in range(400):
        env = Environment()
        d1 = Disk(env, DiskSpec())
        d2 = Disk(env, DiskSpec())
        # random prior state: cold, sequential head, or a read that
        # leaves a readahead window behind
        pre = rng.choice(["none", "seq", "read"])
        if pre == "seq":
            hp = rng.randrange(0, 10**9)
            d1._head_pos = hp
            d2._head_pos = hp
        elif pre == "read":
            off0 = rng.randrange(0, 10**9)
            nb0 = rng.choice([4096, 65536, 1 << 20])
            with kernel_mode("baseline"):
                d1.service_time(READ, off0, nb0)
                d2.service_time(READ, off0, nb0)
        op = rng.choice([READ, WRITE])
        nbytes = rng.choice([0, 512, 4096, 32768, 65536, 262144, 1 << 20])
        count = rng.randrange(9, 200)
        stride = nbytes + rng.choice(
            [1, 512, 4096, 100_000, 2 * (1 << 20), 127 * max(nbytes, 65536)]
        )
        offset = rng.randrange(0, 10**9)
        if offset + stride * (count - 1) + nbytes > spec.capacity_bytes:
            continue
        vec_cases += 1
        with kernel_mode("baseline"):
            t_scalar = d1.service_time(op, offset, nbytes, count, stride)
        with kernel_mode("analytic"):
            t_vector = d2.service_time(op, offset, nbytes, count, stride)
        assert t_scalar == t_vector, (trial, op, offset, nbytes, count, stride)
        assert d1._head_pos == d2._head_pos
        assert (d1._ra_start, d1._ra_end) == (d2._ra_start, d2._ra_end)
        assert d1.stats.seeks == d2.stats.seeks
        assert d1.stats.readahead_hits == d2.stats.readahead_hits
    assert vec_cases > 200, "random parameters barely hit the vector path"
