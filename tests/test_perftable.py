"""Performance-table tests: Table I schema and the Fig. 11 search
algorithm, pinned by unit cases and hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.perftable import PerfRow, PerformanceTable
from repro.storage.base import AccessMode, AccessType


def table_with(blocks_rates, op="write", access=AccessType.GLOBAL, mode=AccessMode.SEQUENTIAL):
    t = PerformanceTable("test")
    for block, rate in blocks_rates:
        t.add(PerfRow(op, block, access, mode, rate))
    return t


class TestRow:
    def test_codes_match_paper_encoding(self):
        r = PerfRow("read", 1024, AccessType.LOCAL, AccessMode.SEQUENTIAL, 1.0)
        assert r.op_code == 0 and r.access_code == 0
        w = PerfRow("write", 1024, AccessType.GLOBAL, AccessMode.SEQUENTIAL, 1.0)
        assert w.op_code == 1 and w.access_code == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfRow("append", 1024, AccessType.LOCAL, AccessMode.SEQUENTIAL, 1.0)
        with pytest.raises(ValueError):
            PerfRow("read", 0, AccessType.LOCAL, AccessMode.SEQUENTIAL, 1.0)
        with pytest.raises(ValueError):
            PerfRow("read", 1024, AccessType.LOCAL, AccessMode.SEQUENTIAL, -1.0)


class TestFig11Search:
    """The paper's four lookup cases, verbatim."""

    BLOCKS = [(32 * 1024, 10.0), (256 * 1024, 20.0), (1024 * 1024, 30.0)]

    def test_below_minimum_selects_minimum(self):
        t = table_with(self.BLOCKS)
        assert t.lookup("write", 1600, AccessType.GLOBAL) == 10.0

    def test_above_maximum_selects_maximum(self):
        t = table_with(self.BLOCKS)
        assert t.lookup("write", 50 * 1024 * 1024, AccessType.GLOBAL) == 30.0

    def test_exact_match(self):
        t = table_with(self.BLOCKS)
        assert t.lookup("write", 256 * 1024, AccessType.GLOBAL) == 20.0

    def test_between_selects_closest_upper(self):
        t = table_with(self.BLOCKS)
        assert t.lookup("write", 100 * 1024, AccessType.GLOBAL) == 20.0
        assert t.lookup("write", 300 * 1024, AccessType.GLOBAL) == 30.0

    def test_boundaries_inclusive(self):
        t = table_with(self.BLOCKS)
        assert t.lookup("write", 32 * 1024, AccessType.GLOBAL) == 10.0
        assert t.lookup("write", 1024 * 1024, AccessType.GLOBAL) == 30.0

    def test_no_matching_op_returns_none(self):
        t = table_with(self.BLOCKS, op="write")
        assert t.lookup("read", 1024, AccessType.GLOBAL) is None

    def test_mode_fallback_to_sequential(self):
        t = table_with(self.BLOCKS, mode=AccessMode.SEQUENTIAL)
        got = t.lookup("write", 256 * 1024, AccessType.GLOBAL, AccessMode.STRIDED)
        assert got == 20.0

    def test_mode_exact_preferred_over_fallback(self):
        t = table_with(self.BLOCKS, mode=AccessMode.SEQUENTIAL)
        t.add(PerfRow("write", 256 * 1024, AccessType.GLOBAL, AccessMode.STRIDED, 5.0))
        got = t.lookup("write", 256 * 1024, AccessType.GLOBAL, AccessMode.STRIDED)
        assert got == 5.0

    def test_access_fallback(self):
        t = table_with(self.BLOCKS, access=AccessType.LOCAL)
        got = t.lookup("write", 256 * 1024, AccessType.GLOBAL)
        assert got == 20.0

    def test_no_fallback_when_disabled(self):
        t = table_with(self.BLOCKS, mode=AccessMode.SEQUENTIAL)
        got = t.lookup("write", 256 * 1024, AccessType.GLOBAL, AccessMode.STRIDED, fallback_mode=False)
        assert got is None

    def test_duplicate_blocks_averaged(self):
        t = table_with([(1024, 10.0), (1024, 30.0)])
        assert t.lookup("write", 1024, AccessType.GLOBAL) == 20.0


class TestPersistence:
    def test_csv_roundtrip(self):
        t = table_with([(1024, 10.5), (4096, 20.25)])
        t.add(PerfRow("read", 1024, AccessType.LOCAL, AccessMode.RANDOM, 3.125))
        text = t.to_csv()
        back = PerformanceTable.from_csv("test", text)
        assert len(back) == 3
        assert back.lookup("read", 1024, AccessType.LOCAL, AccessMode.RANDOM) == 3.125
        assert back.lookup("write", 4096, AccessType.GLOBAL) == 20.25

    def test_csv_header(self):
        assert PerformanceTable("x").to_csv().splitlines()[0] == "op,block_bytes,access,mode,rate_Bps"


# ----------------------------------------------------------------------
# hypothesis: Fig. 11 semantics as properties
# ----------------------------------------------------------------------
blocks_strategy = st.lists(
    st.tuples(st.integers(1, 1 << 30), st.floats(0.1, 1e9, allow_nan=False)),
    min_size=1,
    max_size=12,
    unique_by=lambda t: t[0],
)


@settings(max_examples=200, deadline=None)
@given(blocks_strategy, st.integers(1, 1 << 31))
def test_lookup_always_returns_a_table_rate(rows, query):
    t = table_with(rows)
    got = t.lookup("write", query, AccessType.GLOBAL)
    rates = {r for _b, r in rows}
    assert got in rates


@settings(max_examples=200, deadline=None)
@given(blocks_strategy, st.integers(1, 1 << 31))
def test_lookup_selects_closest_upper_or_clamps(rows, query):
    t = table_with(rows)
    got = t.lookup("write", query, AccessType.GLOBAL)
    by_block = dict(rows)
    blocks = sorted(by_block)
    if query <= blocks[0]:
        expected = by_block[blocks[0]]
    elif query >= blocks[-1]:
        expected = by_block[blocks[-1]]
    else:
        expected = by_block[min(b for b in blocks if b >= query)]
    assert got == expected


@settings(max_examples=100, deadline=None)
@given(blocks_strategy)
def test_csv_roundtrip_property(rows):
    t = table_with(rows)
    back = PerformanceTable.from_csv("t", t.to_csv())
    for block, rate in rows:
        assert back.lookup("write", block, AccessType.GLOBAL) == pytest.approx(rate, rel=1e-3)
