"""Cluster-builder tests: Aohyper, cluster A, and the generic System."""

import pytest

from repro.simengine import Environment
from repro.clusters import (
    AOHYPER_CONFIGS,
    aohyper_config,
    build_aohyper,
    build_cluster_a,
    build_system,
    cluster_a_config,
)
from repro.hardware.raid import RAIDLevel
from repro.storage.base import GiB, KiB
from conftest import small_config


class TestAohyper:
    def test_three_configurations(self):
        assert set(AOHYPER_CONFIGS) == {"jbod", "raid1", "raid5"}

    def test_paper_parameters(self):
        cfg = aohyper_config("raid5")
        assert cfg.n_compute == 8
        assert cfg.compute_spec.cores == 2
        assert cfg.compute_spec.ram_bytes == 2 * GiB
        assert cfg.server_device.level is RAIDLevel.RAID5
        assert cfg.server_device.ndisks == 5
        assert cfg.server_device.stripe_bytes == 256 * KiB
        assert cfg.separate_data_network  # two Gigabit networks

    def test_jbod_single_disk(self):
        cfg = aohyper_config("jbod")
        assert cfg.server_device.level is RAIDLevel.JBOD
        assert cfg.server_device.ndisks == 1

    def test_raid1_mirror(self):
        cfg = aohyper_config("raid1")
        assert cfg.server_device.ndisks == 2

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            aohyper_config("raid6")

    def test_build(self):
        system = build_aohyper(Environment(), "jbod")
        assert len(system.compute) == 8
        assert system.server_node.name == "ionode"


class TestClusterA:
    def test_paper_parameters(self):
        cfg = cluster_a_config()
        assert cfg.n_compute == 32
        assert cfg.compute_spec.cores == 4
        assert cfg.compute_spec.ram_bytes == 12 * GiB
        assert cfg.server_spec.ram_bytes == 8 * GiB
        assert cfg.local_device.level is RAIDLevel.JBOD
        assert cfg.server_device.level is RAIDLevel.RAID5

    def test_build(self):
        system = build_cluster_a(Environment())
        assert len(system.compute) == 32


class TestSystem:
    def test_every_node_has_vfs_with_both_mounts(self, system):
        for node in system.compute:
            assert node.vfs.resolve("/local/x") is system.local_fs[node.name]
            assert node.vfs.resolve("/nfs/x") is system.nfs_mounts[node.name]

    def test_server_sees_export_locally(self, system):
        assert system.server_node.vfs.resolve("/nfs/x") is system.export

    def test_separate_networks(self):
        system = build_system(Environment(), small_config(separate_data_network=True))
        assert not system.cluster.shared_network

    def test_shared_network(self):
        system = build_system(Environment(), small_config(separate_data_network=False))
        assert system.cluster.shared_network
        assert system.cluster.comm_network is system.cluster.data_network

    def test_compute_nodes_exclude_io_node(self, system):
        names = [n.name for n in system.cluster.compute_nodes()]
        assert "ionode" not in names

    def test_world_factory(self, system):
        w = system.world(4)
        assert w.nprocs == 4

    def test_cache_disable_flags(self):
        cfg = small_config()
        from dataclasses import replace

        cfg = replace(cfg, client_cache_enabled=False, server_cache_enabled=False)
        system = build_system(Environment(), cfg)
        assert system.nfs_mounts["n0"].cache.spec.capacity_bytes <= 16 * 1024 * 1024
        assert system.export.cache.spec.capacity_bytes <= 64 * 1024 * 1024

    def test_duplicate_node_rejected(self, system):
        from repro.hardware import Node

        with pytest.raises(ValueError):
            system.cluster.add_node(Node(system.env, "n0"))

    def test_unknown_node_lookup(self, system):
        with pytest.raises(KeyError):
            system.cluster.node("n99")
