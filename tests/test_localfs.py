"""Local filesystem tests: namespace, data path, write-back, allocation."""

import pytest

from repro.simengine import Environment
from repro.hardware import Node, NodeSpec, RAIDArray, RAIDConfig, RAIDLevel
from repro.storage.base import IORequest, KiB, MiB
from repro.storage.cache import CacheSpec
from repro.storage.localfs import Inode, LocalFS

from conftest import SMALL_DISK


def make_fs(ram=64 * MiB, write_back=True, level=RAIDLevel.JBOD, ndisks=1):
    env = Environment()
    node = Node(env, "n", NodeSpec(ram_bytes=ram))
    arr = RAIDArray(env, RAIDConfig(level=level, ndisks=ndisks, disk=SMALL_DISK))
    fs = LocalFS(env, node, arr, cache_spec=CacheSpec(capacity_bytes=ram // 2, write_back=write_back))
    return env, fs


class TestNamespace:
    def test_create_and_stat(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        assert isinstance(inode, Inode)
        assert fs.stat("/f") is inode
        assert fs.exists("/f")

    def test_create_truncates(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB)))
        assert inode.size == 1 * MiB
        inode2 = env.run(fs.create("/f"))
        assert inode2 is inode
        assert inode.size == 0

    def test_open_missing_raises(self):
        env, fs = make_fs()
        with pytest.raises(FileNotFoundError):
            fs.open("/missing")

    def test_open_create_flag(self):
        env, fs = make_fs()
        inode = env.run(fs.open("/new", create=True))
        assert fs.exists("/new")
        assert isinstance(inode, Inode)

    def test_unlink(self):
        env, fs = make_fs()
        env.run(fs.create("/f"))
        env.run(fs.unlink("/f"))
        assert not fs.exists("/f")
        with pytest.raises(FileNotFoundError):
            fs.unlink("/f")

    def test_unlink_drops_cache(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB)))
        assert fs.cache.file_resident_segments(inode.fileid) > 0
        env.run(fs.unlink("/f"))
        assert fs.cache.file_resident_segments(inode.fileid) == 0

    def test_metadata_ops_take_time(self):
        env, fs = make_fs()
        env.run(fs.create("/f"))
        assert env.now > 0


class TestDataPath:
    def test_write_extends_size(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 2 * MiB, 1 * MiB)))
        assert inode.size == 3 * MiB

    def test_write_returns_bytes(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        assert env.run(fs.submit(inode, IORequest("write", 0, 256 * KiB, count=4))) == 1 * MiB

    def test_cached_reread_fast(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=8)))
        t0 = env.now
        env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB, count=8)))
        cached = env.now - t0
        media = 8 * MiB / fs.array.config.disk.outer_rate_Bps
        assert cached < media / 2  # served from cache

    def test_cold_read_hits_device(self):
        env, fs = make_fs(ram=32 * MiB)
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=64)))
        env.run(fs.sync())
        reads0 = fs.array.stats.bytes_read
        env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB, count=64)))
        assert fs.array.stats.bytes_read > reads0

    def test_write_back_defers_device_write(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        written0 = fs.array.stats.bytes_written
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB)))
        deferred = fs.array.stats.bytes_written - written0
        env.run(fs.fsync(inode))
        flushed = fs.array.stats.bytes_written - written0
        assert deferred < flushed

    def test_write_through_hits_device_immediately(self):
        env, fs = make_fs(write_back=False)
        inode = env.run(fs.create("/f"))
        written0 = fs.array.stats.bytes_written
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB)))
        assert fs.array.stats.bytes_written - written0 >= 1 * MiB

    def test_fsync_only_flushes_target_file(self):
        env, fs = make_fs()
        a = env.run(fs.create("/a"))
        b = env.run(fs.create("/b"))
        env.run(fs.submit(a, IORequest("write", 0, 1 * MiB)))
        env.run(fs.submit(b, IORequest("write", 0, 1 * MiB)))
        env.run(fs.fsync(a))
        assert not fs.cache.dirty_segments(fileid=a.fileid)
        assert fs.cache.dirty_segments(fileid=b.fileid)

    def test_sync_flushes_everything(self):
        env, fs = make_fs()
        a = env.run(fs.create("/a"))
        env.run(fs.submit(a, IORequest("write", 0, 4 * MiB)))
        env.run(fs.sync())
        assert fs.cache.dirty_bytes == 0
        assert fs.array.dirty_bytes == 0

    def test_sparse_writes_much_slower_than_dense_when_uncacheable(self):
        env, fs = make_fs(ram=16 * MiB)
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=128)))
        env.run(fs.sync())
        t0 = env.now
        env.run(fs.submit(inode, IORequest("write", 0, 2 * KiB, count=2000, stride=10 * MiB)))
        env.run(fs.sync())
        sparse_dt = env.now - t0
        t0 = env.now
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=4)))
        env.run(fs.sync())
        dense_dt = env.now - t0
        sparse_rate = 2 * KiB * 2000 / sparse_dt
        dense_rate = 4 * MiB / dense_dt
        assert sparse_rate < dense_rate / 10

    def test_fully_resident_file_serves_any_pattern_from_memory(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=4)))
        reads0 = fs.array.stats.bytes_read
        env.run(fs.submit(inode, IORequest("read", 0, 2 * KiB, count=100, stride=40 * KiB)))
        assert fs.array.stats.bytes_read == reads0  # no device reads

    def test_throttling_bounds_dirty_bytes(self):
        env, fs = make_fs(ram=16 * MiB)
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=64)))
        assert fs.cache.dirty_bytes <= fs.cache.spec.capacity_bytes

    def test_stats(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 64 * KiB, count=4)))
        env.run(fs.submit(inode, IORequest("read", 0, 64 * KiB, count=2)))
        assert fs.stats.writes == 4
        assert fs.stats.reads == 2
        assert fs.stats.bytes_written == 256 * KiB
        assert fs.stats.bytes_read == 128 * KiB


class TestAllocation:
    def test_extents_cover_written_range(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 10 * MiB)))
        assert inode.allocated_bytes() >= 10 * MiB
        assert isinstance(inode.device_offset(5 * MiB), int)

    def test_device_offset_beyond_allocation_raises(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        with pytest.raises(KeyError):
            inode.device_offset(1)

    def test_files_get_disjoint_extents(self):
        env, fs = make_fs()
        a = env.run(fs.create("/a"))
        b = env.run(fs.create("/b"))
        env.run(fs.submit(a, IORequest("write", 0, 1 * MiB)))
        env.run(fs.submit(b, IORequest("write", 0, 1 * MiB)))
        assert a.device_offset(0) != b.device_offset(0)

    def test_serialized_write_lock(self):
        """Concurrent serialized writers to one inode make no more than
        1/per_op_s aggregate progress."""
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        per_op = 1e-3
        evs = [
            fs.submit_serialized_write(inode, IORequest("write", 0, 2 * KiB, count=50), per_op)
            for _ in range(4)
        ]
        env.run(env.all_of(evs))
        assert env.now >= 4 * 50 * per_op  # fully serialised

    def test_serialized_write_rejects_reads(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        with pytest.raises(ValueError):
            fs.submit_serialized_write(inode, IORequest("read", 0, 2 * KiB), 1e-3)


class TestEOFReads:
    def test_read_of_empty_file_is_short_and_free(self):
        """A read at offset 0 of a never-written file is a POSIX
        zero-byte short read: no extents exist, and the device must
        not be consulted (regression: this used to raise KeyError
        from Inode.device_offset)."""
        env, fs = make_fs()
        inode = env.run(fs.create("/empty"))
        t0 = env.now
        env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB)))
        assert fs.array.stats.bytes_read == 0
        # only CPU/metadata time elapsed, no media transfer
        assert env.now - t0 < 1e-3

    def test_read_past_eof_is_short_and_free(self):
        env, fs = make_fs()
        inode = env.run(fs.create("/f"))
        env.run(fs.submit(inode, IORequest("write", 0, 64 * KiB)))
        env.run(fs.sync())
        before = fs.array.stats.bytes_read
        env.run(fs.submit(inode, IORequest("read", 10 * MiB, 1 * MiB)))
        assert fs.array.stats.bytes_read == before

    def test_read_within_file_still_reads_device(self):
        env, fs = make_fs(ram=8 * MiB)
        inode = env.run(fs.create("/g"))
        env.run(fs.submit(inode, IORequest("write", 0, 4 * MiB)))
        env.run(fs.sync())
        fs.cache.drop_file(inode.fileid)
        env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB)))
        assert fs.array.stats.bytes_read > 0
