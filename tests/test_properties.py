"""Cross-cutting property-based tests (hypothesis) on model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simengine import Environment
from repro.hardware.disk import Disk, DiskSpec, READ, WRITE
from repro.hardware.network import GIGABIT, Link
from repro.hardware.raid import RAIDConfig, RAIDLevel
from repro.storage.base import IORequest, classify_mode
from repro.tracing import IOEvent, PhaseDetector, detect_phases

KiB = 1024
MiB = 1024 * KiB


# ----------------------------------------------------------------------
# disk cost model
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 64 * MiB),
    st.integers(0, 100 * 1000 * MiB),
    st.sampled_from([READ, WRITE]),
)
def test_disk_service_time_positive_and_bounded(nbytes, offset, op):
    d = Disk(Environment(), DiskSpec())
    offset = offset % (d.spec.capacity_bytes - 64 * MiB)
    t = d.service_time(op, offset, nbytes)
    assert t > 0
    # never slower than worst seek + rotation + slowest media
    upper = d.spec.avg_seek_s + d.spec.half_rotation_s + nbytes / d.spec.inner_rate_Bps + 1e-3
    assert t <= upper


@settings(max_examples=60, deadline=None)
@given(st.integers(4 * KiB, 4 * MiB), st.integers(1, 32))
def test_disk_bulk_time_superadditive_in_count(nbytes, count):
    """More operations never take less total head time."""
    d1 = Disk(Environment(), DiskSpec())
    t1 = d1.service_time(READ, 0, nbytes, count=count)
    d2 = Disk(Environment(), DiskSpec())
    t2 = d2.service_time(READ, 0, nbytes, count=count + 1)
    assert t2 >= t1 * 0.999


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 16 * MiB))
def test_disk_sequential_rate_between_inner_and_bus(nbytes):
    d = Disk(Environment(), DiskSpec())
    t = d.service_time(READ, 0, nbytes)
    rate = nbytes / t
    assert rate <= d.spec.bus_rate_Bps
    assert rate <= d.spec.outer_rate_Bps * 1.01


# ----------------------------------------------------------------------
# network
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(1, 64 * MiB), st.integers(1, 64))
def test_link_hold_time_monotonic(nbytes, count):
    env = Environment()
    link = Link(env, GIGABIT)
    t = link.hold_time(nbytes, count)
    assert t > 0
    assert link.hold_time(nbytes + 1, count) >= t
    assert link.hold_time(nbytes, count + 1) >= t


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 16 * MiB))
def test_link_rate_never_exceeds_effective_bandwidth(nbytes):
    env = Environment()
    link = Link(env, GIGABIT)
    env.run(link.transfer(nbytes))
    assert nbytes / env.now <= GIGABIT.bandwidth_Bps * 1.001


# ----------------------------------------------------------------------
# RAID configuration algebra
# ----------------------------------------------------------------------
raid_levels = st.sampled_from(list(RAIDLevel))


@settings(max_examples=100, deadline=None)
@given(raid_levels, st.integers(1, 12))
def test_raid_capacity_never_exceeds_raw(level, ndisks):
    try:
        cfg = RAIDConfig(level=level, ndisks=ndisks)
    except ValueError:
        return  # invalid combinations are rejected, fine
    raw = ndisks * cfg.disk.capacity_bytes
    assert 0 < cfg.capacity_bytes <= raw
    assert cfg.data_disks <= ndisks


# ----------------------------------------------------------------------
# request geometry
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(
    st.integers(0, 1 << 40),
    st.integers(1, 1 << 26),
    st.integers(1, 1000),
    st.one_of(st.none(), st.just(-1), st.integers(1, 1 << 27)),
)
def test_iorequest_span_at_least_total_when_stride_geq_nbytes(offset, nbytes, count, stride):
    req = IORequest("read", offset, nbytes, count, stride)
    assert req.total_bytes == nbytes * count
    if stride is None or stride == -1 or stride >= nbytes:
        assert req.span >= req.total_bytes or stride == -1
    assert req.mode is classify_mode(nbytes, count, stride)


# ----------------------------------------------------------------------
# phase detection
# ----------------------------------------------------------------------
event_strategy = st.tuples(
    st.integers(0, 3),  # rank
    st.sampled_from(["read", "write"]),
    st.integers(1, 1 << 20),  # nbytes
    st.floats(0.0, 100.0),  # t_start
    st.floats(0.001, 5.0),  # duration
)


@settings(max_examples=100, deadline=None)
@given(st.lists(event_strategy, min_size=1, max_size=50))
def test_phase_detection_conserves_bytes_and_time(raw):
    events = [
        IOEvent(r, op, 0, nb, 1, None, t0, t0 + d, "/f") for r, op, nb, t0, d in raw
    ]
    phases = detect_phases(events)
    assert sum(p.total_bytes for p in phases) == sum(e.total_bytes for e in events)
    assert sum(p.total_time for p in phases) == pytest.approx(
        sum(e.duration for e in events)
    )
    weights = PhaseDetector.weights(phases)
    assert sum(weights.values()) == pytest.approx(1.0)
    assert all(w >= 0 for w in weights.values())
    # phase ids unique and dense
    assert sorted(p.phase_id for p in phases) == list(range(len(phases)))


# ----------------------------------------------------------------------
# RAID striping arithmetic
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(
    st.integers(0, 1 << 36),
    st.integers(1, 1 << 28),
    st.integers(2, 8),
    st.sampled_from([64 * KiB, 256 * KiB, 1 * MiB]),
)
def test_split_over_conserves_bytes(offset, total, ways, stripe):
    """The per-member byte shares of a striped extent sum exactly to the
    extent, and no member gets more than its fair share plus one chunk."""
    from repro.hardware.raid import RAIDArray, RAIDConfig, RAIDLevel

    env = Environment()
    arr = RAIDArray(env, RAIDConfig(level=RAIDLevel.RAID0, ndisks=ways))
    shares = arr._split_over(offset, total, ways, stripe)
    assert sum(shares) == total
    fair = total // ways
    assert all(s <= fair + stripe for s in shares)
    assert all(s >= 0 for s in shares)
