"""Node / Cluster hardware-container tests."""

import pytest

from repro.simengine import Environment
from repro.hardware import (
    Cluster,
    GIGABIT,
    Network,
    Node,
    NodeSpec,
    RAIDConfig,
    RAIDLevel,
)
from repro.storage.base import GiB, MiB


def test_node_defaults():
    env = Environment()
    n = Node(env, "x")
    assert n.cpu.capacity == n.spec.cores
    assert n.array is None


def test_node_with_storage():
    env = Environment()
    n = Node(env, "x", storage=RAIDConfig(level=RAIDLevel.JBOD, ndisks=1))
    assert n.array is not None
    assert n.array.capacity_bytes > 0


def test_compute_time_scales_with_flops():
    env = Environment()
    n = Node(env, "x", NodeSpec(core_gflops=2.0))
    assert n.compute_time(2e9) == pytest.approx(1.0)
    assert n.compute_time(4e9) == pytest.approx(2.0)


def test_compute_occupies_a_core():
    env = Environment()
    n = Node(env, "x", NodeSpec(cores=1, core_gflops=1.0))

    def prog():
        yield from n.compute(1e9)
        return env.now

    assert env.run(env.process(prog())) == pytest.approx(1.0)


def test_cores_limit_parallel_compute():
    env = Environment()
    n = Node(env, "x", NodeSpec(cores=2, core_gflops=1.0))
    done = []

    def prog(tag):
        yield from n.compute(1e9)
        done.append((tag, env.now))

    for t in range(4):
        env.process(prog(t))
    env.run()
    times = sorted(t for _tag, t in done)
    assert times[:2] == [pytest.approx(1.0)] * 2
    assert times[2:] == [pytest.approx(2.0)] * 2


def test_memcpy_time():
    env = Environment()
    n = Node(env, "x", NodeSpec(memcpy_Bps=1000.0 * MiB))
    assert n.memcpy_time(500 * MiB) == pytest.approx(0.5)


def test_cluster_networks_shared_flag():
    env = Environment()
    c = Cluster(env)
    net = Network(env, ["a", "b"], GIGABIT)
    c.set_networks(net)
    assert c.shared_network
    c2 = Cluster(env)
    c2.set_networks(net, Network(env, ["a", "b"], GIGABIT))
    assert not c2.shared_network


def test_cluster_compute_nodes_skip_io_prefix():
    env = Environment()
    c = Cluster(env)
    c.add_node(Node(env, "n0"))
    c.add_node(Node(env, "ionode"))
    names = [n.name for n in c.compute_nodes()]
    assert names == ["n0"]
