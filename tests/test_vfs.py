"""VFS mount-table and file-handle tests."""

import pytest

from repro.storage.base import IORequest, MiB
from repro.storage.vfs import FileHandle, VFS


def test_mounts_resolve_by_longest_prefix(system):
    node = system.node("n0")
    vfs = node.vfs
    assert vfs.resolve("/local/x") is system.local_fs["n0"]
    assert vfs.resolve("/nfs/x") is system.nfs_mounts["n0"]


def test_resolve_requires_absolute(system):
    with pytest.raises(ValueError):
        system.node("n0").vfs.resolve("relative")


def test_resolve_unmounted_raises(system):
    with pytest.raises(FileNotFoundError):
        system.node("n0").vfs.resolve("/mnt/none")


def test_duplicate_mount_rejected(system):
    vfs = system.node("n0").vfs
    with pytest.raises(ValueError):
        vfs.mount("/local", system.local_fs["n0"])


def test_open_create_returns_handle(system):
    env = system.env
    vfs = system.node("n0").vfs
    fh = env.run(vfs.create("/local/f"))
    assert isinstance(fh, FileHandle)
    assert fh.path == "/local/f"
    assert fh.size == 0


def test_handle_streaming_cursor(system):
    env = system.env
    vfs = system.node("n0").vfs
    fh = env.run(vfs.create("/local/f"))
    env.run(fh.write(1 * MiB))
    env.run(fh.write(1 * MiB))
    assert fh.pos == 2 * MiB
    assert fh.size == 2 * MiB
    fh.seek(0)
    env.run(fh.read(1 * MiB))
    assert fh.pos == 1 * MiB


def test_handle_positional_io(system):
    env = system.env
    vfs = system.node("n0").vfs
    fh = env.run(vfs.create("/local/f"))
    env.run(fh.pwrite(5 * MiB, 1 * MiB))
    assert fh.size == 6 * MiB
    assert fh.pos == 0  # positional ops leave the cursor alone


def test_seek_negative_rejected(system):
    env = system.env
    fh = env.run(system.node("n0").vfs.create("/local/f"))
    with pytest.raises(ValueError):
        fh.seek(-1)


def test_closed_handle_rejects_io(system):
    env = system.env
    fh = env.run(system.node("n0").vfs.create("/local/f"))
    env.run(fh.close())
    with pytest.raises(ValueError):
        fh.write(1024)


def test_vfs_exists_and_unlink(system):
    env = system.env
    vfs = system.node("n0").vfs
    env.run(vfs.create("/local/f"))
    assert vfs.exists("/local/f")
    env.run(vfs.unlink("/local/f"))
    assert not vfs.exists("/local/f")
    assert not vfs.exists("/mnt/none/x")  # unmounted path is just False


def test_nfs_paths_shared_between_nodes(system):
    env = system.env
    v0 = system.node("n0").vfs
    v1 = system.node("n1").vfs
    env.run(v0.create("/nfs/shared"))
    assert v1.exists("/nfs/shared")


def test_local_paths_are_per_node(system):
    env = system.env
    v0 = system.node("n0").vfs
    v1 = system.node("n1").vfs
    env.run(v0.create("/local/mine"))
    assert not v1.exists("/local/mine")


def test_handle_fsync(system):
    env = system.env
    fh = env.run(system.node("n0").vfs.create("/local/f"))
    env.run(fh.write(1 * MiB))
    env.run(fh.fsync())
    assert system.local_fs["n0"].cache.dirty_segments(fileid=fh.inode.fileid) == []
