"""Tests for the storage vocabulary: IORequest and access-mode taxonomy."""

import pytest

from repro.storage.base import AccessMode, IORequest, classify_mode


class TestIORequest:
    def test_total_bytes(self):
        assert IORequest("read", 0, 100, count=5).total_bytes == 500

    def test_default_stride_is_contiguous(self):
        r = IORequest("write", 0, 64)
        assert r.effective_stride == 64
        assert r.is_dense

    def test_span_dense(self):
        assert IORequest("read", 0, 100, count=4).span == 400

    def test_span_strided(self):
        r = IORequest("read", 0, 100, count=4, stride=300)
        assert r.span == 3 * 300 + 100

    def test_span_random(self):
        assert IORequest("read", 0, 100, count=4, stride=-1).span == 400

    def test_strided_not_dense(self):
        assert not IORequest("read", 0, 100, count=2, stride=300).is_dense

    def test_single_op_always_dense(self):
        assert IORequest("read", 0, 100, count=1, stride=999).is_dense

    def test_validation(self):
        with pytest.raises(ValueError):
            IORequest("append", 0, 10)
        with pytest.raises(ValueError):
            IORequest("read", -1, 10)
        with pytest.raises(ValueError):
            IORequest("read", 0, 10, count=0)


class TestClassifyMode:
    def test_sequential(self):
        assert classify_mode(100, 10, None) is AccessMode.SEQUENTIAL
        assert classify_mode(100, 10, 100) is AccessMode.SEQUENTIAL

    def test_strided(self):
        assert classify_mode(100, 10, 250) is AccessMode.STRIDED

    def test_random(self):
        assert classify_mode(100, 10, -1) is AccessMode.RANDOM

    def test_single_op_sequential(self):
        assert classify_mode(100, 1, 9999) is AccessMode.SEQUENTIAL

    def test_request_mode_property(self):
        assert IORequest("read", 0, 8, count=4, stride=32).mode is AccessMode.STRIDED
