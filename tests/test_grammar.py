"""Workload grammar: YAML-subset parsing, validation, golden compiles."""

import json

import pytest

from repro.units import fmt_bytes, parse_bytes
from repro.workloads import (
    SyntheticApplication,
    WorkloadSpecError,
    compile_spec,
    load_spec,
    spec_fingerprint,
    validate_spec,
)
from repro.workloads.grammar import is_workload_spec, load_document, spec_name

KiB = 1024
MiB = 1024 * KiB


# ----------------------------------------------------------------------
# units helper
# ----------------------------------------------------------------------
class TestUnits:
    @pytest.mark.parametrize("value,expected", [
        (4096, 4096),
        ("4096", 4096),
        ("64KiB", 64 * KiB),
        ("64K", 64 * KiB),
        ("64 kb", 64 * KiB),
        ("1.5MiB", 1536 * KiB),
        ("2GiB", 2 << 30),
        ("17B", 17),
        ("0", 0),
    ])
    def test_parse_bytes(self, value, expected):
        assert parse_bytes(value) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "12Q", "-5", -5, "1.3B", 1.5, True])
    def test_parse_bytes_rejects(self, bad):
        with pytest.raises((ValueError, TypeError)):
            parse_bytes(bad)

    @pytest.mark.parametrize("n,text", [
        (0, "0B"),
        (512, "512B"),
        (4096, "4.0KiB"),
        (1536 * KiB, "1.5MiB"),
        (8 << 20, "8.0MiB"),
    ])
    def test_fmt_bytes(self, n, text):
        assert fmt_bytes(n) == text

    def test_round_trip_exact_sizes(self):
        for n in (1, 512, 64 * KiB, 3 * MiB, 1 << 30):
            assert parse_bytes(fmt_bytes(n)) == n


# ----------------------------------------------------------------------
# document loading (YAML subset + JSON)
# ----------------------------------------------------------------------
YAML_DOC = """\
# checkpoint cycle
version: 1
name: "ckpt # not-a-comment"
nprocs: 8
path: /nfs/ckpt.dat
layout: file-per-process
rank_disjoint: false
phases:
  - op: write            # data dump
    nbytes: 64KiB
    count: 16
    collective: true
  - loop: 3
    phases:
      - op: read
        nbytes: 1MiB
        compute_s: 0.5
"""


class TestYamlSubset:
    def test_nested_document(self):
        doc = load_document(YAML_DOC)
        assert doc["version"] == 1
        assert doc["name"] == "ckpt # not-a-comment"
        assert doc["rank_disjoint"] is False
        assert doc["phases"][0]["collective"] is True
        assert doc["phases"][1]["loop"] == 3
        assert doc["phases"][1]["phases"][0]["compute_s"] == 0.5

    def test_scalars(self):
        doc = load_document("a: true\nb: 3\nc: 2.5\nd: ~\ne: 'it''s'\nf: [1, 2]\n")
        assert doc == {"a": True, "b": 3, "c": 2.5, "d": None,
                       "e": "it's", "f": [1, 2]}

    def test_tabs_rejected(self):
        with pytest.raises(WorkloadSpecError, match="tabs"):
            load_document("a:\n\tb: 1\n")

    def test_json_routing(self):
        doc = load_document('{"version": 1, "phases": []}')
        assert doc == {"version": 1, "phases": []}

    def test_file_loading(self, tmp_path):
        y = tmp_path / "w.yaml"
        y.write_text(YAML_DOC)
        j = tmp_path / "w.json"
        j.write_text(json.dumps(load_document(YAML_DOC)))
        assert load_document(y) == load_document(j)
        assert load_document(str(y)) == load_document(y)

    def test_empty_document(self):
        with pytest.raises(WorkloadSpecError, match="empty"):
            load_document("# only a comment\n")


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def minimal(**over):
    doc = {"version": 1, "phases": [{"op": "write", "nbytes": 4096}]}
    doc.update(over)
    return doc


class TestValidation:
    def test_minimal_ok(self):
        assert validate_spec(minimal()) == minimal()

    def test_collects_every_error(self):
        doc = {
            "version": 99,
            "nprocs": 0,
            "bogus": 1,
            "phases": [
                {"op": "append", "nbytes": "many"},
                {"op": "read", "nbytes": 4096, "stride": 4096},
                {"loop": 0, "phases": []},
            ],
        }
        with pytest.raises(WorkloadSpecError) as exc:
            validate_spec(doc)
        text = "\n".join(exc.value.errors)
        assert len(exc.value.errors) >= 6
        assert "spec.version" in text
        assert "spec.nprocs" in text
        assert "unknown key 'bogus'" in text
        assert "phases[0].op" in text and "phases[0].nbytes" in text
        assert "'stride' is only valid with pattern 'strided'" in text
        assert "phases[2].loop" in text and "non-empty phase list" in text

    def test_pattern_constraints(self):
        with pytest.raises(WorkloadSpecError, match="requires 'stride'"):
            validate_spec(minimal(phases=[
                {"op": "write", "nbytes": 1, "pattern": "strided"}]))
        with pytest.raises(WorkloadSpecError, match="requires 'gap_s'"):
            validate_spec(minimal(phases=[
                {"op": "write", "nbytes": 1, "pattern": "bursty"}]))
        with pytest.raises(WorkloadSpecError, match="'gap_s', not 'compute_s'"):
            validate_spec(minimal(phases=[
                {"op": "write", "nbytes": 1, "pattern": "bursty",
                 "gap_s": 0.1, "compute_s": 0.2}]))
        with pytest.raises(WorkloadSpecError, match="only valid with pattern 'bursty'"):
            validate_spec(minimal(phases=[
                {"op": "write", "nbytes": 1, "burst_ops": 4}]))

    def test_missing_version_and_phases(self):
        with pytest.raises(WorkloadSpecError) as exc:
            validate_spec({})
        assert any("version" in e for e in exc.value.errors)
        assert any("phases" in e for e in exc.value.errors)

    def test_bool_is_not_an_int(self):
        with pytest.raises(WorkloadSpecError, match="nprocs"):
            validate_spec(minimal(nprocs=True))

    def test_is_workload_spec(self):
        assert is_workload_spec(minimal())
        assert not is_workload_spec({"faults": []})
        assert not is_workload_spec([1, 2])


# ----------------------------------------------------------------------
# compilation (golden)
# ----------------------------------------------------------------------
class TestCompile:
    def test_golden_strided_and_loop(self):
        spec = compile_spec(load_document(YAML_DOC))
        assert spec.nprocs == 8
        assert spec.path == "/nfs/ckpt.dat"
        assert spec.per_process_files is True
        assert spec.rank_disjoint is False
        # write phase + 3 loop iterations of the read phase
        assert [p.op for p in spec.phases] == ["write"] + ["read"] * 3
        w = spec.phases[0]
        assert (w.nbytes, w.count, w.collective) == (64 * KiB, 16, True)
        r = spec.phases[1]
        assert (r.nbytes, r.compute_s, r.repetitions) == (1 * MiB, 0.5, 1)
        assert spec.phases[1] == spec.phases[2] == spec.phases[3]

    def test_strided_lowering(self):
        spec = compile_spec(minimal(phases=[{
            "op": "read", "nbytes": "4KiB", "count": 8,
            "pattern": "strided", "stride": "16KiB", "repetitions": 2,
        }]))
        p = spec.phases[0]
        assert (p.nbytes, p.count, p.stride, p.repetitions) == (4 * KiB, 8, 16 * KiB, 2)

    def test_bursty_sugar(self):
        spec = compile_spec(minimal(phases=[{
            "op": "write", "nbytes": 4096, "count": 2,
            "pattern": "bursty", "burst_ops": 8, "gap_s": 0.25,
        }]))
        p = spec.phases[0]
        # burst lowers to bulk-count geometry with the gap as compute
        assert p.count == 16
        assert p.compute_s == 0.25
        assert p.stride is None

    def test_defaults(self):
        spec = compile_spec(minimal())
        assert spec.nprocs == 4
        assert spec.path == "/nfs/synthetic.dat"
        assert not spec.per_process_files
        assert spec.rank_disjoint
        p = spec.phases[0]
        assert (p.count, p.repetitions, p.collective, p.compute_s) == (1, 1, False, 0.0)

    def test_expansion_guard(self):
        node = {"op": "write", "nbytes": 1}
        doc = minimal(phases=[{"loop": 1000, "phases": [
            {"loop": 1000, "phases": [node]}]}])
        with pytest.raises(WorkloadSpecError, match="expands to more than"):
            compile_spec(doc)

    def test_compile_validates(self):
        with pytest.raises(WorkloadSpecError):
            compile_spec({"version": 1, "phases": [{"op": "write"}]})


# ----------------------------------------------------------------------
# fingerprints and applications
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_formats(self):
        doc = load_document(YAML_DOC)
        as_json = json.dumps(doc)
        fp1 = spec_fingerprint(compile_spec(doc))
        fp2 = spec_fingerprint(compile_spec(load_document(as_json)))
        assert fp1 == fp2

    def test_sensitive_to_geometry(self):
        a = compile_spec(minimal())
        b = compile_spec(minimal(phases=[{"op": "write", "nbytes": 8192}]))
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_label_excluded(self):
        spec = compile_spec(minimal())
        a = SyntheticApplication(spec=spec, label="one")
        b = SyntheticApplication(spec=spec, label="two")
        assert a.fingerprint() == b.fingerprint() == spec_fingerprint(spec)

    def test_load_spec_names(self, tmp_path):
        f = tmp_path / "mixture.yaml"
        f.write_text("version: 1\nphases:\n  - op: write\n    nbytes: 4096\n")
        app = load_spec(f)
        assert isinstance(app, SyntheticApplication)
        assert app.name == "mixture"  # falls back to the file stem
        named = load_spec(YAML_DOC)
        assert named.name == "ckpt # not-a-comment"
        assert spec_name(load_document(YAML_DOC)) == "ckpt # not-a-comment"
