"""Integration tests: the paper's qualitative conclusions at reduced
scale (class W / fewer ranks so the suite stays fast)."""

import pytest

from repro.simengine import Environment
from repro.core import Methodology, characterize_app, generate_used_percentage
from repro.clusters.builder import build_system
from repro.storage.base import KiB, MiB
from repro.workloads.apps import BTIOApplication
from repro.workloads.btio import BTIOConfig, run_btio
from repro.workloads.madbench import MadBenchConfig, run_madbench
from conftest import small_config

KW = dict(block_sizes=(64 * KiB, 1 * MiB), char_file_bytes=16 * MiB,
          ior_nprocs=2, ior_file_bytes=8 * MiB)


@pytest.fixture(scope="module")
def method():
    m = Methodology({d: small_config(d) for d in ("jbod", "raid5")}, **KW)
    m.characterize()
    return m


@pytest.fixture(scope="module")
def btio_reports(method):
    out = {}
    for subtype in ("full", "simple"):
        app = BTIOApplication(BTIOConfig(clazz="W", nprocs=4, subtype=subtype, path="/nfs/bt"))
        out[subtype] = method.evaluate(app)
    return out


class TestPaperShapes:
    def test_full_more_efficient_than_simple(self, btio_reports):
        """'The full subtype is a more efficient implementation than the
        simple subtype for NAS BT-IO.'"""
        for cfg in ("jbod", "raid5"):
            full = btio_reports["full"][cfg]
            simple = btio_reports["simple"][cfg]
            assert full.execution_time_s < simple.execution_time_s
            assert full.throughput_Bps > simple.throughput_Bps

    def test_simple_uses_small_fraction_of_write_capacity(self, btio_reports):
        """'...for the simple subtype this I/O system is only used ~30% on
        reading and less than 15% on writing operations.'"""
        for cfg in ("jbod", "raid5"):
            pct = btio_reports["simple"][cfg].used.cell("nfs", "write")
            assert pct is not None and pct < 35.0

    def test_full_exploits_capacity(self, btio_reports):
        """'the capacity of I/O system for class C is exploited' — the
        full subtype reaches a large share of the characterized rates."""
        pct = btio_reports["full"]["jbod"].used.cell("nfs", "write")
        assert pct is not None and pct > 50.0

    def test_simple_more_io_bound(self, btio_reports):
        for cfg in ("jbod", "raid5"):
            assert (
                btio_reports["simple"][cfg].io_fraction
                > btio_reports["full"][cfg].io_fraction
            )

    def test_simple_far_from_capacity_on_both_ops(self, btio_reports):
        """Both operations of the simple subtype sit far below the
        characterized capacity (the read>write relation of paper
        Tables III/IV emerges at class-C scale; see benchmarks/)."""
        used = btio_reports["simple"]["jbod"].used
        assert used.cell("nfs", "write") < 35.0
        assert used.cell("nfs", "read") < 35.0


class TestUsedPercentageFlow:
    def test_profile_to_used_table_by_hand(self, method):
        system = build_system(Environment(), small_config("jbod"))
        res = run_btio(system, BTIOConfig(clazz="W", nprocs=4, subtype="full", path="/nfs/bt"))
        profile = characterize_app(res.tracer)
        used = generate_used_percentage("jbod", profile, method.tables["jbod"])
        assert used.cell("nfs", "write") is not None
        assert used.cell("localfs", "write") is not None
        assert used.cell("iolib", "write") is not None


class TestMadbenchShapes:
    def run_mb(self, device, filetype):
        system = build_system(Environment(), small_config(device))
        return run_madbench(
            system,
            MadBenchConfig(kpix=2, nbin=4, nprocs=4, filetype=filetype,
                           path="/nfs/mb", busywork_s=0.05),
        )

    def test_raid5_outperforms_jbod(self):
        """Paper §IV-F: 'the most suitable configuration is RAID 5'."""
        jbod = self.run_mb("jbod", "shared")
        raid5 = self.run_mb("raid5", "shared")
        assert raid5.io_time <= jbod.io_time * 1.05

    def test_both_filetypes_complete_with_same_data_volume(self):
        u = self.run_mb("jbod", "unique")
        s = self.run_mb("jbod", "shared")
        assert u.functions["S"].bytes_written == s.functions["S"].bytes_written


class TestDegradedEndToEnd:
    """Failure injection through the whole stack: an application keeps
    running on a degraded redundant array, dies on JBOD."""

    def test_btio_completes_on_degraded_raid5(self):
        healthy = build_system(Environment(), small_config("raid5"))
        r1 = run_btio(healthy, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))

        degraded = build_system(Environment(), small_config("raid5"))
        degraded.server_node.array.fail_disk(0)
        r2 = run_btio(degraded, BTIOConfig(clazz="S", nprocs=4, subtype="full", path="/nfs/bt"))
        assert r2.execution_time >= r1.execution_time  # never faster degraded

    def test_nfs_on_dead_jbod_raises(self):
        system = build_system(Environment(), small_config("jbod"))
        system.server_node.array.fail_disk(0)
        mount = system.nfs_mounts["n0"]
        env = system.env
        with pytest.raises(RuntimeError, match="lost data"):
            env.run(mount.create("/f"))

    def test_degraded_raid5_read_rate_drops(self):
        from repro.storage.base import IORequest

        def read_rate(fail):
            system = build_system(Environment(), small_config("raid5"))
            if fail:
                system.local_fs["n0"].array.fail_disk(1)
            fs = system.local_fs["n0"]
            env = system.env
            inode = env.run(fs.create("/d"))
            env.run(fs.submit(inode, IORequest("write", 0, 1 * MiB, count=128)))
            env.run(fs.sync())
            t0 = env.now
            env.run(fs.submit(inode, IORequest("read", 0, 1 * MiB, count=128)))
            return 128 * MiB / (env.now - t0)

        assert read_rate(fail=True) < read_rate(fail=False)
