"""Unit tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.simengine import (
    Container,
    Environment,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    env.run(until=0)
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2
    assert len(res.queue) == 1


def test_resource_release_wakes_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert r1.triggered and not r2.triggered
    res.release(r1)
    env.run()
    assert r2.triggered


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(tag, hold):
        yield from res.using(hold)
        order.append(tag)

    for i, tag in enumerate("abc"):
        env.process(worker(tag, 1.0))
    env.run()
    assert order == ["a", "b", "c"]
    assert env.now == 3.0


def test_resource_release_unheld_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Environment(), capacity=0)


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(tag, prio):
        req = res.request(priority=prio)
        yield req
        yield env.timeout(1)
        res.release(req)
        order.append(tag)

    def spawn():
        # occupy the resource so later requests queue
        req = res.request()
        yield req
        env.process(worker("low", 5))
        env.process(worker("high", 0))
        env.process(worker("mid", 3))
        yield env.timeout(1)
        res.release(req)

    env.process(spawn())
    env.run()
    assert order == ["high", "mid", "low"]


def test_container_put_get():
    env = Environment()
    c = Container(env, capacity=100, init=10)
    env.run(c.put(40))
    assert c.level == 50
    env.run(c.get(30))
    assert c.level == 20


def test_container_get_blocks_until_available():
    env = Environment()
    c = Container(env, capacity=100, init=0)
    got = c.get(25)
    assert not got.triggered

    def producer():
        yield env.timeout(1)
        yield c.put(25)

    env.process(producer())
    env.run()
    assert got.triggered
    assert c.level == 0


def test_container_put_blocks_when_full():
    env = Environment()
    c = Container(env, capacity=10, init=10)
    put = c.put(5)
    assert not put.triggered
    env.run(c.get(8))
    assert put.triggered
    assert c.level == 7


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    c = Container(env, capacity=5)
    with pytest.raises(ValueError):
        c.put(-1)


def test_store_fifo():
    env = Environment()
    s = Store(env)
    env.run(s.put("x"))
    env.run(s.put("y"))
    assert env.run(s.get()) == "x"
    assert env.run(s.get()) == "y"


def test_store_get_blocks_until_put():
    env = Environment()
    s = Store(env)
    got = s.get()
    assert not got.triggered

    def producer():
        yield env.timeout(2)
        yield s.put("late")

    env.process(producer())
    env.run()
    assert got.value == "late"


def test_store_capacity_blocks_put():
    env = Environment()
    s = Store(env, capacity=1)
    env.run(s.put(1))
    p2 = s.put(2)
    assert not p2.triggered
    assert env.run(s.get()) == 1
    assert p2.triggered
    assert len(s) == 1
